"""Cross-executor equivalence suite for the lowered AthenaProgram IR.

The refactor contract: the program-driven plaintext forward, the noise-free
simulated engine, the trace generator, and the real-ciphertext backend all
execute the *same* lowered schedule, and their outputs / per-phase trace
totals are identical to the pre-refactor ``isinstance``-chain walkers.
Frozen verbatim copies of those legacy walkers live in this file as the
reference semantics.
"""

import numpy as np
import pytest

from repro.core import trace as tracelib
from repro.core.inference import AthenaNoiseModel, SimulatedAthenaEngine
from repro.core.lut import layer_lut, relu_lut
from repro.core.program import lower
from repro.core.trace import WorkloadTrace, effective_t, trace_model
from repro.data import synthetic_cifar, synthetic_digits
from repro.fhe.params import ATHENA
from repro.quant import nn
from repro.quant.models import build, input_shape
from repro.quant.quantize import (
    QAvgPool,
    QConv,
    QFlatten,
    QGlobalAvgPool,
    QLinear,
    QMaxPool,
    QResidual,
    QuantConfig,
    QuantizedModel,
    _int_conv,
    _wrap_t,
    quantize_model,
)

MODELS = ("mnist_cnn", "lenet", "resnet20")


@pytest.fixture(scope="module")
def zoo():
    """Quantized miniatures of the three benchmark architectures."""
    out = {}
    for name in MODELS:
        rng = np.random.default_rng(7)
        shape = input_shape(name)
        x = (
            synthetic_digits(96, rng)[0]
            if shape == (1, 28, 28)
            else synthetic_cifar(96, rng)[0]
        )
        model = build(name, rng=np.random.default_rng(11), width=0.25)
        out[name] = (quantize_model(model, x[:64], QuantConfig(7, 7)), x)
    return out


# ---------------------------------------------------------------------------
# Frozen legacy reference walkers (pre-refactor semantics, verbatim)
# ---------------------------------------------------------------------------


def _legacy_run_layers(layers, x_q, cfg):
    for layer in layers:
        if isinstance(layer, QConv):
            mac = _int_conv(x_q, layer)
            layer.mac_peak = max(layer.mac_peak, int(np.abs(mac).max()))
            x_q = layer.remap(_wrap_t(mac, cfg.t), cfg.a_max)
        elif isinstance(layer, QLinear):
            mac = x_q @ layer.weight.T + layer.bias
            layer.mac_peak = max(layer.mac_peak, int(np.abs(mac).max()))
            x_q = layer.remap(_wrap_t(mac, cfg.t), cfg.a_max)
        elif isinstance(layer, QMaxPool):
            cols, oh, ow = nn.im2col(x_q, layer.kernel, layer.kernel, layer.stride, 0)
            b, c = x_q.shape[0], x_q.shape[1]
            x_q = (
                cols.reshape(b, oh, ow, c, layer.kernel**2)
                .max(axis=-1)
                .transpose(0, 3, 1, 2)
            )
        elif isinstance(layer, QAvgPool):
            cols, oh, ow = nn.im2col(x_q, layer.kernel, layer.kernel, layer.stride, 0)
            b, c = x_q.shape[0], x_q.shape[1]
            total = cols.reshape(b, oh, ow, c, layer.kernel**2).sum(axis=-1)
            layer.mac_peak = max(layer.mac_peak, int(np.abs(total).max()))
            x_q = np.rint(total / layer.kernel**2).astype(np.int64).transpose(0, 3, 1, 2)
        elif isinstance(layer, QGlobalAvgPool):
            total = x_q.sum(axis=(2, 3))
            layer.mac_peak = max(layer.mac_peak, int(np.abs(total).max()))
            x_q = np.rint(total / layer.spatial).astype(np.int64)
        elif isinstance(layer, QFlatten):
            x_q = x_q.reshape(x_q.shape[0], -1)
        elif isinstance(layer, QResidual):
            main = _legacy_run_layers(layer.body, x_q, cfg)
            skip = _legacy_run_layers(layer.shortcut, x_q, cfg) if layer.shortcut else x_q
            total = main + skip * layer.skip_alpha
            layer.mac_peak = max(layer.mac_peak, int(np.abs(total).max()))
            x_q = layer.remap(_wrap_t(total, cfg.t), cfg.a_max)
    return x_q


def _legacy_mac_layers(qmodel):
    out = []

    def walk(layers):
        for layer in layers:
            if isinstance(layer, (QConv, QLinear, QAvgPool, QGlobalAvgPool)):
                out.append(layer)
            elif isinstance(layer, QResidual):
                walk(layer.body)
                if layer.shortcut:
                    walk(layer.shortcut)
                out.append(layer)

    walk(qmodel.layers)
    return out


def _legacy_trace_model(qmodel, params=ATHENA, softmax=True, t_eff=None):
    import math

    trace = WorkloadTrace(qmodel.name, params)

    def visit(layers, prefix=""):
        idx = 0
        i = 0
        while i < len(layers):
            layer = layers[i]
            nxt = layers[i + 1] if i + 1 < len(layers) else None
            name = f"{prefix}{type(layer).__name__.lower()}{idx}"
            if isinstance(layer, QConv):
                t_layer = effective_t(layer, params, t_eff)
                plan = tracelib.athena_plan(tracelib._conv_shape(layer), params.n)
                trace.add("linear", name, tracelib._pmult(params).scaled(plan.pmult))
                if plan.hadd:
                    trace.add("linear", name, tracelib._hadd(params).scaled(plan.hadd))
                values = int(math.prod(layer.out_shape))
                if isinstance(nxt, QMaxPool):
                    pooled = values // (nxt.stride**2)
                    rounds = nxt.kernel**2 - 1
                    cts = max(1, -(-pooled // params.n))
                    for r in range(rounds):
                        trace.add("pooling", f"{name}.max{r}",
                                  tracelib.se_chain_ops(params, min(values, cts * params.n)))
                        trace.add("pooling", f"{name}.max{r}",
                                  tracelib.packing_ops(params).scaled(cts))
                        tracelib._add_fbs(trace, params, "pooling", f"{name}.max{r}",
                                          t_layer, cts)
                        trace.add("pooling", f"{name}.max{r}",
                                  tracelib.s2c_ops(params).scaled(cts))
                    values = pooled
                    i += 1
                tracelib._lut_round(trace, params, name, values, t_layer)
            elif isinstance(layer, QLinear):
                t_layer = effective_t(layer, params, t_eff)
                in_cts = max(1, -(-layer.in_features // params.n))
                trace.add("linear", name, tracelib._pmult(params).scaled(in_cts))
                tracelib._lut_round(trace, params, name, layer.out_features, t_layer)
            elif isinstance(layer, QMaxPool):
                pass
            elif isinstance(layer, (QAvgPool, QGlobalAvgPool)):
                tracelib._add_fbs(trace, params, "pooling", name,
                                  effective_t(layer, params, t_eff), 1)
            elif isinstance(layer, QResidual):
                visit(layer.body, prefix=f"{name}.body.")
                if layer.shortcut:
                    visit(layer.shortcut, prefix=f"{name}.skip.")
                trace.add("linear", name, tracelib._hadd(params))
                tracelib._lut_round(trace, params, name, params.n,
                                    effective_t(layer, params, t_eff))
            elif isinstance(layer, QFlatten):
                pass
            idx += 1
            i += 1

    visit(qmodel.layers)
    if softmax:
        tracelib._add_fbs(trace, params, "softmax", "softmax", t_eff or params.t, 2)
        trace.add("softmax", "softmax", tracelib._cmult(params))
    return trace


# ---------------------------------------------------------------------------
# Output equivalence
# ---------------------------------------------------------------------------


class TestPlaintextEquivalence:
    @pytest.mark.parametrize("name", MODELS)
    def test_forward_bit_identical_to_legacy(self, zoo, name):
        qm, x = zoo[name]
        x_q = qm.quantize_input(x[:16])
        got = qm.forward_int(x_q)
        want = _legacy_run_layers(qm.layers, x_q, qm.config)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("name", MODELS)
    def test_mac_sources_match_legacy_order(self, zoo, name):
        qm, _ = zoo[name]
        assert qm.mac_layers() == _legacy_mac_layers(qm)

    @pytest.mark.parametrize("name", MODELS)
    def test_macs_fit_modulus(self, zoo, name):
        qm, x = zoo[name]
        qm.forward_float(x[:16])
        assert qm.check_t()


class TestSimulatedEquivalence:
    @pytest.mark.parametrize("name", MODELS)
    def test_noise_free_engine_bit_identical(self, zoo, name):
        qm, x = zoo[name]
        engine = SimulatedAthenaEngine(
            qm, noise=AthenaNoiseModel(enabled=False)
        )
        got = engine.infer(x[:16])
        want = qm.forward_int(qm.quantize_input(x[:16]))
        assert np.array_equal(got, want)


class TestTraceEquivalence:
    @pytest.mark.parametrize("name", MODELS)
    def test_phase_sequence_identical_to_legacy(self, zoo, name):
        qm, x = zoo[name]
        qm.forward_float(x[:16])  # populate mac_peak as real callers do
        new = trace_model(qm)
        old = _legacy_trace_model(qm)
        assert len(new.phases) == len(old.phases)
        for p_new, p_old in zip(new.phases, old.phases):
            assert (p_new.phase, p_new.layer) == (p_old.phase, p_old.layer)
            assert p_new.ops == p_old.ops

    @pytest.mark.parametrize("name", MODELS)
    def test_per_phase_totals_identical(self, zoo, name):
        qm, x = zoo[name]
        qm.forward_float(x[:16])
        assert trace_model(qm).by_phase() == _legacy_trace_model(qm).by_phase()

    def test_t_eff_override_still_matches(self, zoo):
        qm, _ = zoo["lenet"]
        assert (
            trace_model(qm, t_eff=4096).by_phase()
            == _legacy_trace_model(qm, t_eff=4096).by_phase()
        )


# ---------------------------------------------------------------------------
# Program structure (fusion decisions made once, at lowering)
# ---------------------------------------------------------------------------


class TestProgramStructure:
    def test_mnist_schedule(self, zoo):
        qm, _ = zoo["mnist_cnn"]
        steps = lower(qm).steps
        kinds = [(s.kind, getattr(s, "op", None)) for s in steps]
        assert kinds == [
            ("linear", "conv"),
            ("reshape", None),
            ("linear", "fc"),
            ("linear", "fc"),
        ]

    def test_lenet_fuses_both_maxpools(self, zoo):
        qm, _ = zoo["lenet"]
        steps = lower(qm).steps
        convs = [s for s in steps if s.kind == "linear" and s.op == "conv"]
        assert len(convs) == 2
        assert all(isinstance(s.fused_pool, QMaxPool) for s in convs)
        assert all(s.out_values == s.mac_values // 4 for s in convs)
        # the pools were consumed: no standalone pool steps remain
        assert not any(s.kind == "pool" for s in steps)

    def test_resnet_blocks_lower_to_residual_steps(self, zoo):
        qm, _ = zoo["resnet20"]
        program = lower(qm)
        residuals = [s for s in program.steps if s.kind == "residual"]
        assert len(residuals) == 9
        # stride-2 transitions carry projection shortcuts
        with_proj = [s for s in residuals if s.shortcut is not None]
        assert len(with_proj) == 2
        for s in residuals:
            assert len(s.body.steps) == 2  # two convs per basic block
        # gap lowers to a sum PoolStep + division RemapStep
        kinds = [s.kind for s in program.steps]
        gap_at = kinds.index("pool")
        assert program.steps[gap_at].op == "gap"
        assert program.steps[gap_at + 1].kind == "remap"

    def test_tail_s2c_dropped_exactly_once(self, zoo):
        for name in MODELS:
            qm, _ = zoo[name]
            program = lower(qm)
            flags = [
                s.s2c for s in program.steps if hasattr(s, "s2c")
            ]
            assert flags[-1] is False
            assert all(flags[:-1])

    def test_nonmonotone_activation_blocks_pool_fusion(self):
        def q(activation):
            conv = QConv(
                weight=np.ones((1, 1, 2, 2), dtype=np.int64),
                bias=np.zeros(1, dtype=np.int64),
                stride=1, pad=0, in_scale=1.0, w_scale=1.0, out_scale=1.0,
                activation=activation, in_shape=(1, 4, 4), out_shape=(1, 3, 3),
            )
            return QuantizedModel(
                [conv, QMaxPool(2, 2)], QuantConfig(4, 4, t=257), 1.0, (1, 4, 4)
            )

        fused = lower(q("relu")).steps
        assert fused[0].fused_pool is not None and len(fused) == 1
        unfused = lower(q("gelu")).steps
        assert unfused[0].fused_pool is None
        assert unfused[1].kind == "pool" and unfused[1].op == "max"

    def test_lut_specs_match_layer_lut(self, zoo):
        qm, _ = zoo["resnet20"]
        program = lower(qm)
        for step in program.lut_steps()[:6]:
            source = step.layer if step.kind in ("linear", "residual") else step.source
            built = step.lut.build(qm.config)
            legacy = layer_lut(source, qm.config)
            assert built.name == legacy.name
            assert np.array_equal(built.values, legacy.values)

    def test_step_names_follow_trace_scheme(self, zoo):
        qm, _ = zoo["resnet20"]
        program = lower(qm)
        names = [s.name for s in program.steps]
        assert names[0] == "qconv0"
        assert "qresidual1" in names
        res = next(s for s in program.steps if s.kind == "residual")
        assert res.body.steps[0].name.startswith(f"{res.name}.body.")


class TestSatelliteFixes:
    def test_fbslut_signed_range_cached(self):
        lut = relu_lut(257)
        assert lut.signed_range == 128
        assert lut.signed_range is lut.signed_range  # cached, same int object

    def test_loopcost_default_not_shared(self):
        from repro.core.framework import LoopCost

        a, b = LoopCost(), LoopCost()
        a.fbs.smult += 5
        assert b.fbs.smult == 0

    def test_interpolation_cached_by_table_bytes(self):
        from repro.fhe.fbs import FbsLut

        a = FbsLut(np.arange(17, dtype=np.int64), 17, "first")
        b = FbsLut(np.arange(17, dtype=np.int64), 17, "second")
        assert a.coeffs is b.coeffs  # one interpolation, shared read-only
        assert not a.coeffs.flags.writeable

    def test_register_interpolation_seeds_cache(self):
        from repro.fhe.fbs import FbsLut, interpolate_lut, register_interpolation

        vals = (np.arange(17, dtype=np.int64) * 3) % 17
        coeffs = interpolate_lut(vals, 17)
        register_interpolation(vals, 17, coeffs)
        lut = FbsLut(vals, 17, "seeded")
        assert np.array_equal(lut.coeffs, coeffs)

    def test_stock_lut_builders_cached(self):
        from repro.core.lut import avgpool_lut

        assert relu_lut(257) is relu_lut(257)
        assert avgpool_lut(2, 257) is avgpool_lut(2, 257)
        assert avgpool_lut(2, 257) is not avgpool_lut(3, 257)

    def test_plaintext_operand_forms_cached(self):
        from repro.fhe.bfv import Plaintext
        from repro.fhe.params import TEST_LOOP

        pt = Plaintext.from_coeffs(np.arange(8, dtype=np.int64), TEST_LOOP)
        assert pt.pmult_operand() is pt.pmult_operand()
        assert pt.add_operand() is pt.add_operand()


# ---------------------------------------------------------------------------
# Real-ciphertext backend: run_program chains two five-step rounds
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestCiphertextProgram:
    def _tiny_model(self, rng):
        """conv(1->2, k3) on 6x6 -> flatten -> fc(32->3), sized for TEST_LOOP
        (N = 128, t = 257): every MAC stays inside +/-128 and both kernel
        encodings fit degree 128."""
        cfg = QuantConfig(4, 4, t=257)
        conv = QConv(
            weight=rng.integers(-2, 3, (2, 1, 3, 3)).astype(np.int64),
            bias=rng.integers(-4, 5, 2).astype(np.int64),
            stride=1, pad=0, in_scale=1.0, w_scale=1.0, out_scale=12.0,
            activation="relu", in_shape=(1, 6, 6), out_shape=(2, 4, 4),
        )
        fc_w = rng.integers(-1, 2, (3, 32)).astype(np.int64)
        fc_w[:, rng.permutation(32)[:16]] = 0  # keep FC MACs well inside t/2
        fc = QLinear(
            weight=fc_w, bias=rng.integers(-3, 4, 3).astype(np.int64),
            in_scale=1.0, w_scale=1.0, out_scale=2.0, activation="identity",
            in_features=32, out_features=3,
        )
        return QuantizedModel([conv, QFlatten(), fc], cfg, 1.0, (1, 6, 6))

    def test_chained_loops_match_plaintext(self):
        from repro.core.framework import AthenaPipeline, LoopCost
        from repro.fhe.params import TEST_LOOP

        rng = np.random.default_rng(5)
        qm = self._tiny_model(rng)
        x_q = rng.integers(-3, 4, (1, 6, 6)).astype(np.int64)
        want = qm.forward_int(x_q[None])[0]
        assert qm.check_t()

        program = lower(qm, TEST_LOOP)
        pipe = AthenaPipeline(TEST_LOOP, seed=41)
        cost = LoopCost()
        got = pipe.run_program(program, x_q, cost)
        assert got.shape == want.shape
        # Two chained LUT rounds: the conv round's +/-1 remap deviations can
        # propagate through the FC MAC, so allow a couple of output LSBs.
        assert np.abs(got - want).max() <= 2
        assert cost.pmult == 2  # one per linear step
        assert cost.extractions == 32 + 3

    def test_tail_skips_s2c(self):
        from repro.core.framework import AthenaPipeline, CiphertextExecutor
        from repro.fhe.params import TEST_LOOP

        rng = np.random.default_rng(5)
        qm = self._tiny_model(rng)
        program = lower(qm, TEST_LOOP)
        pipe = AthenaPipeline(TEST_LOOP, seed=41)
        ex = CiphertextExecutor(pipe, program)
        from repro.core.program import run_program

        run_program(program, ex, rng.integers(-3, 4, (1, 6, 6)).astype(np.int64))
        assert ex.tail_s2c is False and ex.out_count == 3


@pytest.mark.slow
class TestCompiledPlanBitIdentity:
    """The compile/runtime split must not change a single output bit.

    A plan only moves operand *derivation* to compile time; the homomorphic
    op sequence is untouched, so two pipelines with identical seeds must
    produce byte-identical outputs whether the plan is precompiled,
    compiled in-span, or rebuilt from its serialized artifact.
    """

    def _setup(self):
        from repro.fhe.params import TEST_LOOP
        from repro.perf.bench import mnist_cnn_micro

        rng = np.random.default_rng(5)
        qm = mnist_cnn_micro(rng)
        x_q = rng.integers(-3, 4, (1, 6, 6)).astype(np.int64)
        return lower(qm, TEST_LOOP), x_q

    def test_precompiled_plan_matches_in_span_compile(self):
        from repro.core.framework import AthenaPipeline, LoopCost
        from repro.core.plan import compile_program
        from repro.fhe.params import TEST_LOOP

        program, x_q = self._setup()
        baseline = AthenaPipeline(TEST_LOOP, seed=7).run_program(program, x_q)

        plan = compile_program(program, TEST_LOOP)
        cost = LoopCost()
        got = AthenaPipeline(TEST_LOOP, seed=7).run_program(
            program, x_q, cost, plan=plan
        )
        assert np.array_equal(got, baseline)
        # The thin interpreter still meters the same ciphertext ops.
        assert cost.pmult == 2 and cost.extractions == 32 + 3

    def test_save_load_run_round_trip(self):
        from repro.core.framework import AthenaPipeline
        from repro.core.plan import compile_program
        from repro.fhe.params import TEST_LOOP
        from repro.fhe.serialize import dump_plan, load_plan
        from repro.perf.bench import mnist_cnn_micro

        program, x_q = self._setup()
        plan = compile_program(program, TEST_LOOP)
        loaded = load_plan(dump_plan(plan), TEST_LOOP)

        want = AthenaPipeline(TEST_LOOP, seed=7).run_program(
            program, x_q, plan=plan
        )
        # The loaded plan drives an *equivalent re-lowered* program — plan
        # artifacts resolve by step index, never by step object identity.
        relowered = lower(mnist_cnn_micro(np.random.default_rng(5)), TEST_LOOP)
        got = AthenaPipeline(TEST_LOOP, seed=7).run_program(
            relowered, x_q, plan=loaded
        )
        assert np.array_equal(got, want)

    def test_chunked_plan_matches(self):
        from repro.core.framework import AthenaPipeline
        from repro.core.plan import compile_program
        from repro.fhe.params import TEST_LOOP

        program, x_q = self._setup()
        baseline = AthenaPipeline(TEST_LOOP, seed=7).run_program(
            program, x_q, chunk=16
        )
        plan = compile_program(program, TEST_LOOP, chunk=16)
        got = AthenaPipeline(TEST_LOOP, seed=7).run_program(
            program, x_q, plan=plan
        )
        assert np.array_equal(got, baseline)
