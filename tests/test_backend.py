"""Backend dispatch: context-local selection, counting, and op-count parity.

Three claims pinned here:

1. Selection is *context-local* — concurrent threads on different backends
   never interfere (the InferenceSession thread-safety contract).
2. Every backend is *bit-identical* — Batched, Serial, and a Counting
   wrapper produce byte-for-byte equal ciphertext results, at the RnsPoly
   level and through the full encrypted pipeline.
3. Executed op counts *reconcile with the analytical trace model* — exact
   where engine and model count the same event (extractions, FBS ladder
   ops, the RNS-tier units of a known op mix), within documented bounded
   ratios where their conventions differ (the model assumes cached
   plaintext-NTT operands and hoisted rotations; the software engine
   transforms per op and counts keyswitch streams at full width).
"""

import threading

import numpy as np
import pytest

from repro.core.framework import AthenaPipeline, LoopCost
from repro.core.program import lower
from repro.core.trace import compare_traces, executed_trace, trace_model
from repro.errors import ParameterError
from repro.fhe.backend import (
    BatchedBackend,
    CountingBackend,
    SerialBackend,
    current_backend,
    get_backend,
    use_backend,
)
from repro.fhe.params import TEST_LOOP
from repro.fhe.poly import RnsPoly
from repro.perf.bench import _BLOCK_MIX, mnist_cnn_micro


def _random_poly(rng, params):
    return RnsPoly.from_int_coeffs(
        rng.integers(0, params.t, params.n).astype(np.int64), params.moduli
    )


class TestSelection:
    def test_get_backend_resolves_names_and_instances(self):
        assert get_backend("batched").name == "batched"
        assert get_backend("serial").name == "serial"
        inst = CountingBackend("batched")
        assert get_backend(inst) is inst
        with pytest.raises(ParameterError):
            get_backend("gpu")

    def test_use_backend_yields_and_restores(self):
        before = current_backend()
        with use_backend("serial") as be:
            assert be.name == "serial"
            assert current_backend() is be
        assert current_backend() is before

    def test_two_threads_use_different_backends_concurrently(self):
        """Regression: selection must be context-local, not process-global.

        Both threads sit *inside* their contexts at the same time (barrier),
        so a global toggle — the old ``use_serial_rns`` flag — would make
        one of them observe the other's backend.
        """
        barrier = threading.Barrier(2)
        seen: dict[str, str] = {}

        def worker(name: str) -> None:
            with use_backend(name):
                barrier.wait(timeout=10)
                seen[name] = current_backend().name
                barrier.wait(timeout=10)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in ("serial", "batched")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert seen == {"serial": "serial", "batched": "batched"}

    def test_thread_map_propagates_selection(self):
        """ParallelMap's thread mode carries the caller's backend context
        into worker threads (one context copy per item)."""
        from repro.perf import ExecConfig, ParallelMap

        pmap = ParallelMap(ExecConfig("thread", workers=4))
        with use_backend("serial"):
            names = pmap.map(lambda _: current_backend().name, range(8))
        assert set(names) == {"serial"}


class TestRnsBitIdentity:
    """Batched == Serial == Counting(Batched) for every RnsPoly op."""

    BACKENDS = ("batched", "serial", "counting")

    def _resolve(self, name):
        return CountingBackend("batched") if name == "counting" else name

    @pytest.mark.parametrize(
        "op",
        [
            lambda a, b: a + b,
            lambda a, b: a - b,
            lambda a, b: -a,
            lambda a, b: a * b,
            lambda a, b: a.scalar_mul(12345),
            lambda a, b: a.automorphism(3),
            lambda a, b: a.negacyclic_shift(5),
        ],
    )
    def test_op_identical_across_backends(self, op):
        rng = np.random.default_rng(11)
        a, b = _random_poly(rng, TEST_LOOP), _random_poly(rng, TEST_LOOP)
        results = []
        for name in self.BACKENDS:
            with use_backend(self._resolve(name)):
                results.append(op(a, b).data)
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])

    def test_mod_switch_identical_across_backends(self):
        rng = np.random.default_rng(12)
        a = _random_poly(rng, TEST_LOOP)
        results = []
        for name in self.BACKENDS:
            with use_backend(self._resolve(name)):
                results.append(a.mod_switch(TEST_LOOP.lwe_q))
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])


class TestCountingBackend:
    def test_rns_unit_conventions(self):
        """One of each RNS-tier op lands the trace model's primitive units."""
        params = TEST_LOOP
        l, n = len(params.moduli), params.n
        rng = np.random.default_rng(13)
        a, b = _random_poly(rng, params), _random_poly(rng, params)
        counting = CountingBackend("batched")
        with use_backend(counting):
            _ = a * b
            _ = a + b
            _ = a.scalar_mul(3)
            _ = a.automorphism(3)
        ops = counting.totals()
        assert ops["ntt"] == 3 * l            # fwd x2 + inv, one per limb
        assert ops["mod_mul"] == 2 * l * n    # pointwise product + scalar
        assert ops["mod_add"] == l * n        # elementwise addition
        assert ops["automorph"] == l          # one permutation per limb

    def test_phase_attribution_and_reset(self):
        rng = np.random.default_rng(14)
        a, b = _random_poly(rng, TEST_LOOP), _random_poly(rng, TEST_LOOP)
        counting = CountingBackend("batched")
        with use_backend(counting):
            _ = a + b                       # outside any phase
            with counting.phase("linear"):
                _ = a * b
        by_phase = counting.ops_by_phase()
        assert by_phase["other"]["mod_add"] > 0
        assert by_phase["linear"]["ntt"] > 0
        summary = counting.summary()
        assert set(summary) == {"backend", "phase_ops", "ops"}
        assert summary["backend"] == "batched"
        counting.reset()
        assert counting.ops_by_phase() == {}
        assert counting.totals() == {}


class TestBlockMixParity:
    """The resnet20_block bench mix: executed RNS units match the analytic
    per-op costs *exactly* (no modelling conventions involved)."""

    def test_counts_match_mix_analytics(self):
        params = TEST_LOOP
        l, n = len(params.moduli), params.n
        rng = np.random.default_rng(7)
        a, b = _random_poly(rng, params), _random_poly(rng, params)
        counting = CountingBackend("batched")
        with use_backend(counting):
            x, y = a, b
            for _ in range(_BLOCK_MIX["mul"]):
                x = x * y
            for _ in range(_BLOCK_MIX["add"]):
                x = x + y
            for _ in range(_BLOCK_MIX["scalar_mul"]):
                x = x.scalar_mul(3)
            for k in range(_BLOCK_MIX["automorphism"]):
                x = x.automorphism(2 * k + 3)
        ops = counting.totals()
        assert ops["ntt"] == 3 * l * _BLOCK_MIX["mul"]
        assert ops["mod_mul"] == (
            (_BLOCK_MIX["mul"] + _BLOCK_MIX["scalar_mul"]) * l * n
        )
        assert ops["mod_add"] == _BLOCK_MIX["add"] * l * n
        assert ops["automorph"] == _BLOCK_MIX["automorphism"] * l


def _mnist_fixture():
    rng = np.random.default_rng(5)
    qm = mnist_cnn_micro(rng)
    x_q = rng.integers(-3, 4, (1, 6, 6)).astype(np.int64)
    return qm, lower(qm, TEST_LOOP), x_q


@pytest.mark.slow
class TestPipelineBitIdentity:
    def test_three_backends_identical_end_to_end(self):
        _, program, x_q = _mnist_fixture()
        outs = []
        for backend in (BatchedBackend(), SerialBackend(),
                        CountingBackend("batched")):
            pipe = AthenaPipeline(TEST_LOOP, seed=41, backend=backend)
            outs.append(pipe.run_program(program, x_q))
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[0], outs[2])


@pytest.mark.slow
class TestMnistOpCountParity:
    """Executed vs analytical op counts on the end-to-end MNIST micro run.

    Bands document the known convention deltas (measured ratios in
    parentheses, executed/analytical):

    - ``ntt`` (~20x): the model assumes cached plaintext-NTT operands and
      Halevi-Shoup hoisting, billing ~zero NTTs to linear/packing/S2C; the
      software engine transforms operands per op.
    - ``mod_mul``/``mod_add`` (~3x): the engine counts every limb stream at
      full width (keyswitch gadget accumulation, FBS ladder bookkeeping);
      the model keeps only the dominant terms.
    - ``automorph`` (~0.5x): the model bills per-digit keyswitch
      automorphisms the engine folds into one permutation per component.
    - ``rnsconv`` (~0.01x): the engine counts only mod-switch data
      elements; the model adds the keyswitch base-conversion work its
      accelerator datapath executes.
    """

    RATIO_BANDS = {
        "ntt": (10.0, 40.0),
        "mod_mul": (1.5, 5.0),
        "mod_add": (1.5, 6.0),
        "automorph": (0.25, 1.0),
    }

    def test_executed_vs_analytical(self):
        qm, program, x_q = _mnist_fixture()
        counting = CountingBackend("batched")
        pipe = AthenaPipeline(TEST_LOOP, seed=41)
        cost = LoopCost()
        with use_backend(counting):
            pipe.run_program(program, x_q, cost)

        # Event-level parity against the pipeline's own LoopCost: the
        # counting backend observes exactly the ops the loop accounts.
        events = counting.totals()
        assert events["extract"] == cost.extractions == 35
        assert events["smult"] == cost.fbs.smult
        assert counting.ops_by_phase()["fbs_giant"]["cmult"] == cost.fbs.cmult

        executed = executed_trace(counting, TEST_LOOP)
        analytical = trace_model(qm, TEST_LOOP, softmax=False)
        comparison = compare_traces(executed, analytical)

        # Extractions are counted identically on both sides: exact parity.
        row = comparison["extract"]
        assert row["executed"] == row["analytical"] == 35
        assert row["ratio"] == 1.0

        for prim, (lo, hi) in self.RATIO_BANDS.items():
            ratio = comparison[prim]["ratio"]
            assert ratio is not None and lo <= ratio <= hi, (prim, ratio)
        assert comparison["rnsconv"]["ratio"] < 0.05

    def test_executed_trace_feeds_the_scheduler(self):
        """schedule_executed accepts a populated CountingBackend directly."""
        from repro.accel import ATHENA_ACCEL, schedule_executed

        _, program, x_q = _mnist_fixture()
        counting = CountingBackend("batched")
        pipe = AthenaPipeline(TEST_LOOP, seed=41)
        with use_backend(counting):
            pipe.run_program(program, x_q)
        result = schedule_executed(counting, TEST_LOOP, ATHENA_ACCEL)
        assert result.total_ms > 0
        phases = {p.phase for p in result.phases}
        assert {"linear", "se", "packing", "fbs", "s2c"} <= phases
