"""The layered serving stack: tenants, scheduler, workers, service façade.

Fast tests pin each layer's contract in isolation — admission control and
fair dequeue (pure asyncio, no ciphertexts), crash-safe plan persistence,
the sharded/in-memory cache, the picklable session core, and the service's
registration/validation rules. The ``slow``-marked tests drive real
ciphertext inference through the full stack on the TEST_FBS micro model:
multi-tenant isolation, queue-full shedding against a live service, the
process worker pool, and the headline guarantee that service outputs are
bit-identical to direct :class:`InferenceSession` runs.
"""

from __future__ import annotations

import asyncio
import pickle

import numpy as np
import pytest

import repro.serve.cache as cache_mod
from repro.errors import ParameterError, ServiceOverloaded
from repro.fhe.params import TEST_FBS, TEST_LOOP
from repro.perf import ExecConfig, PerfRecorder
from repro.serve import (
    AthenaService,
    FairScheduler,
    InferenceSession,
    PlanCache,
    ServiceRequest,
    SessionCore,
    ShardedPlanCache,
    Tenant,
    TenantRegistry,
)
from repro.serve.loadgen import serve_micro_cnn


def _request(tenant_id: str, model: str = "m") -> ServiceRequest:
    return ServiceRequest(
        tenant_id=tenant_id, model=model, x_q=np.zeros(1, dtype=np.int64)
    )


def _micro_model():
    return serve_micro_cnn(np.random.default_rng(5))


def _micro_input(rng: np.random.Generator) -> np.ndarray:
    return rng.integers(-2, 3, (1, 4, 4)).astype(np.int64)


# -- tenant layer ------------------------------------------------------------


class TestTenantLayer:
    def test_registry_rejects_duplicates_and_unknowns(self):
        registry = TenantRegistry([Tenant("alice", TEST_FBS)])
        with pytest.raises(ParameterError):
            registry.add(Tenant("alice", TEST_FBS, seed=9))
        with pytest.raises(ParameterError):
            registry.get("mallory")
        assert "alice" in registry and "mallory" not in registry

    def test_empty_tenant_id_rejected(self):
        with pytest.raises(ParameterError):
            Tenant("", TEST_FBS)

    def test_key_sizing_from_params(self):
        alice = Tenant("alice", TEST_FBS, seed=1)
        bob = Tenant("bob", TEST_LOOP, seed=2)
        assert alice.key_material_bytes() > 0
        # A bigger parameter set implies more evaluation-key storage.
        assert bob.key_material_bytes() > alice.key_material_bytes()
        registry = TenantRegistry([alice, bob])
        assert registry.total_key_material_bytes() == (
            alice.key_material_bytes() + bob.key_material_bytes()
        )
        assert "MiB" in alice.describe()

    def test_ids_keep_registration_order(self):
        registry = TenantRegistry(
            [Tenant("z", TEST_FBS), Tenant("a", TEST_FBS)]
        )
        assert registry.ids() == ["z", "a"]


# -- scheduler layer ---------------------------------------------------------


class TestFairScheduler:
    def test_per_tenant_bound_isolates_tenants(self):
        sched = FairScheduler(["a", "b"], capacity=2)
        sched.submit(_request("a"))
        sched.submit(_request("a"))
        with pytest.raises(ServiceOverloaded):
            sched.submit(_request("a"))
        # Tenant a flooding its queue must not shed tenant b.
        sched.submit(_request("b"))
        assert sched.depth("a") == 2 and sched.depth("b") == 1
        assert sched.accepted == 3 and sched.rejected == 1

    def test_round_robin_dequeue_prevents_starvation(self):
        perf = PerfRecorder()
        sched = FairScheduler(["a", "b"], capacity=8, perf=perf)
        for tid in ["a", "a", "a", "b"]:
            sched.submit(_request(tid))
        sched.close()

        async def drain() -> list[str]:
            order = []
            while (req := await sched.next_request()) is not None:
                order.append(req.tenant_id)
            return order

        # b's lone request is served second despite arriving last.
        assert asyncio.run(drain()) == ["a", "b", "a", "a"]
        assert perf.ops["sched.accepted"] == 4
        assert perf.phase_s["queue_wait"] >= 0

    def test_waiter_wakes_on_submit_and_drains_on_close(self):
        async def scenario():
            sched = FairScheduler(["a"], capacity=1)

            async def waiter():
                first = await sched.next_request()
                second = await sched.next_request()
                return first, second

            task = asyncio.create_task(waiter())
            await asyncio.sleep(0)  # park the waiter on the wakeup event
            sched.submit(_request("a"))
            await asyncio.sleep(0)
            sched.close()
            return await task

        first, second = asyncio.run(scenario())
        assert first.tenant_id == "a" and second is None

    def test_closed_scheduler_sheds(self):
        sched = FairScheduler(["a"])
        sched.close()
        with pytest.raises(ServiceOverloaded):
            sched.submit(_request("a"))

    def test_unknown_tenant_is_a_usage_error(self):
        sched = FairScheduler(["a"])
        with pytest.raises(ParameterError):
            sched.submit(_request("intruder"))

    def test_bad_construction_rejected(self):
        with pytest.raises(ParameterError):
            FairScheduler([])
        with pytest.raises(ParameterError):
            FairScheduler(["a"], capacity=0)

    def test_stats_shape(self):
        sched = FairScheduler(["a", "b"], capacity=3)
        sched.submit(_request("a"))
        stats = sched.stats()
        assert stats["capacity_per_tenant"] == 3
        assert stats["queue_depth"] == stats["queue_depth_max"] == 1
        assert stats["per_tenant_depth"] == {"a": 1, "b": 0}


# -- crash-safe plan persistence --------------------------------------------


def _loop_program():
    from repro.core.program import lower
    from repro.perf.bench import mnist_cnn_micro

    return lower(mnist_cnn_micro(np.random.default_rng(5)), TEST_LOOP)


class TestCrashSafePersistence:
    def test_crash_mid_write_leaves_no_partial_plan(self, tmp_path, monkeypatch):
        program = _loop_program()
        cache = PlanCache(tmp_path)

        def crash(src, dst):
            raise OSError("simulated crash before publish")

        monkeypatch.setattr(cache_mod.os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            cache.get(program, TEST_LOOP)
        # Nothing published, nothing leaked: a concurrent reader can never
        # observe a truncated artifact, and the staging file is cleaned up.
        assert list(tmp_path.rglob(f"*{PlanCache.SUFFIX}")) == []
        assert list(tmp_path.rglob("*.tmp")) == []
        monkeypatch.undo()
        # The retry compiles again and persists normally.
        plan = cache.get(program, TEST_LOOP)
        path = cache.path_for(plan.model_hash, TEST_LOOP)
        assert path.exists()
        assert PlanCache(tmp_path).get(program, TEST_LOOP).model_hash == plan.model_hash

    def test_hit_miss_accounting(self, tmp_path):
        program = _loop_program()
        cache = PlanCache(tmp_path)
        assert cache.hit_rate is None
        cache.get(program, TEST_LOOP)
        cache.get(program, TEST_LOOP)
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5
        assert cache.stats() == {"hits": 1, "misses": 1, "hit_rate": 0.5}


class TestShardedPlanCache:
    def test_disk_layout_shards_by_fingerprint_prefix(self, tmp_path):
        program = _loop_program()
        cache = ShardedPlanCache(tmp_path)
        plan = cache.get(program, TEST_LOOP)
        path = cache.path_for(plan.model_hash, TEST_LOOP)
        assert path.parent == tmp_path / plan.model_hash[:2]
        assert path.exists()

    def test_memory_layer_shares_one_plan_object(self, tmp_path, monkeypatch):
        program = _loop_program()
        cache = ShardedPlanCache(tmp_path)
        first = cache.get(program, TEST_LOOP)

        def boom(*a, **k):  # pragma: no cover - fails the test if reached
            raise AssertionError("memoized lookup must not touch disk/compile")

        monkeypatch.setattr(cache_mod, "compile_program", boom)
        monkeypatch.setattr(cache_mod, "load_plan", boom)
        assert cache.get(program, TEST_LOOP) is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_memory_only_mode_never_touches_disk(self, monkeypatch):
        program = _loop_program()
        cache = ShardedPlanCache(None)

        def boom(*a, **k):  # pragma: no cover - fails the test if reached
            raise AssertionError("memory-only cache must not write plans")

        monkeypatch.setattr(cache_mod, "dump_plan", boom)
        first = cache.get(program, TEST_LOOP)
        assert cache.get(program, TEST_LOOP) is first
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.root is None

    def test_chunk_is_part_of_the_key(self, tmp_path):
        program = _loop_program()
        cache = ShardedPlanCache(tmp_path)
        unchunked = cache.get(program, TEST_LOOP)
        chunked = cache.get(program, TEST_LOOP, chunk=16)
        assert unchunked is not chunked
        assert cache.misses == 2


# -- session core / runtime split --------------------------------------------


class TestSessionCore:
    def test_build_compiles_and_fingerprints(self):
        core = SessionCore.build(_micro_model(), TEST_FBS, seed=3)
        assert core.fingerprint == core.plan.model_hash
        assert core.compile_s > 0
        assert core.seed == 3

    def test_core_pickles_across_process_boundaries(self):
        core = SessionCore.build(
            _micro_model(), TEST_FBS, seed=3, backend="serial"
        )
        clone = pickle.loads(pickle.dumps(core))
        assert clone.fingerprint == core.fingerprint
        assert clone.program.name == core.program.name
        assert clone.seed == core.seed and clone.backend == "serial"

    def test_facade_composes_core_and_runtime(self):
        session = InferenceSession(_micro_model(), TEST_FBS, seed=3)
        assert session.core.plan is session.plan
        assert session.runtime.pipeline is session.pipeline
        assert session.requests == 0 and session.latencies == []


# -- service façade: registration and validation (no ciphertext runs) --------


class TestServiceValidation:
    def test_needs_tenants_and_sane_transport(self):
        with pytest.raises(ParameterError):
            AthenaService([])
        with pytest.raises(ParameterError):
            AthenaService([Tenant("a", TEST_FBS)], transport_s=-1.0)

    def test_registration_shares_plans_across_tenants(self):
        service = AthenaService(
            [Tenant("a", TEST_FBS, seed=1), Tenant("b", TEST_FBS, seed=2)]
        )
        fingerprint = service.register_model("micro", _micro_model())
        assert service.models == {"micro": fingerprint}
        # First tenant compiles (miss), the second shares the plan (hit).
        assert service.cache.stats() == {
            "hits": 1, "misses": 1, "hit_rate": 0.5,
        }
        with pytest.raises(ParameterError):
            service.register_model("micro", _micro_model())

    def test_prelowered_program_must_match_tenant_params(self):
        from repro.core.program import lower

        program = lower(_micro_model(), TEST_FBS)
        service = AthenaService([Tenant("a", TEST_LOOP)])
        with pytest.raises(ParameterError):
            service.register_model("micro", program)

    def test_submit_requires_started_service(self):
        service = AthenaService([Tenant("a", TEST_FBS)])
        with pytest.raises(ParameterError):
            service.submit_nowait("a", "micro", np.zeros((1, 4, 4)))


# -- full-stack, real ciphertexts --------------------------------------------


@pytest.mark.slow
class TestServiceEndToEnd:
    def test_outputs_bit_identical_to_direct_sessions(self):
        """The headline guarantee: the service adds layers, not noise."""
        qm = _micro_model()
        rng = np.random.default_rng(11)
        # bob pins the serial dispatch backend; alice inherits the default.
        # Backend selection is per-runtime and context-local, so the pin
        # must never leak into alice's runs (asserted below), and since
        # backends are bit-identical it must not change bob's outputs.
        tenants = [
            Tenant("alice", TEST_FBS, seed=7),
            Tenant("bob", TEST_FBS, seed=8, backend="serial"),
        ]
        service = AthenaService(
            tenants, exec_config=ExecConfig("serial"), queue_capacity=4
        )
        service.register_model("micro", qm)
        batch = [
            ("alice", "micro", _micro_input(rng)),
            ("bob", "micro", _micro_input(rng)),
            ("alice", "micro", _micro_input(rng)),
            ("bob", "micro", _micro_input(rng)),
        ]
        outputs = service.serve_batch(batch)

        # Replay each tenant's request stream through a direct session with
        # the same seed: same keys, same encryption-randomness stream, so
        # the service path must reproduce every output bit for bit.
        alice_rt = service.pool.runtime_for(("alice", "micro"))
        bob_rt = service.pool.runtime_for(("bob", "micro"))
        assert alice_rt.backend is None  # bob's pin stayed bob's
        assert bob_rt.backend.name == "serial"

        for tenant in tenants:
            session = InferenceSession(
                qm, TEST_FBS, seed=tenant.seed, backend=tenant.backend
            )
            for out, (tid, _, x_q) in zip(outputs, batch):
                if tid != tenant.tenant_id:
                    continue
                direct = session.run(x_q)
                assert np.array_equal(out, direct)
                want = qm.forward_int(x_q[None])[0]
                assert np.abs(direct - want).max() <= 2
            # Satellite guarantee: per-request latency percentiles exist.
            stats = session.stats()
            assert stats["requests"] == 2
            assert 0 < stats["run_p50_s"] <= stats["run_p99_s"]
            assert len(session.latencies) == 2

        stats = service.stats()
        assert stats["tenants"]["alice"]["requests"] == 2
        assert stats["tenants"]["bob"]["requests"] == 2
        assert stats["scheduler"]["rejected"] == 0
        # Both tenants run the same model under the same params: one
        # compile, one shared plan.
        assert stats["plan_cache"] == {"hits": 1, "misses": 1, "hit_rate": 0.5}

    def test_queue_full_sheds_against_live_service(self):
        qm = _micro_model()
        rng = np.random.default_rng(13)
        service = AthenaService(
            [Tenant("a", TEST_FBS, seed=1)],
            exec_config=ExecConfig("thread", 1),
            queue_capacity=1,
        )
        service.register_model("micro", qm)

        async def scenario():
            await service.start()
            try:
                accepted = [service.submit_nowait("a", "micro", _micro_input(rng))]
                shed = 0
                for _ in range(3):
                    try:
                        accepted.append(
                            service.submit_nowait("a", "micro", _micro_input(rng))
                        )
                    except ServiceOverloaded:
                        shed += 1
                outs = await asyncio.gather(*accepted)
                return shed, outs
            finally:
                await service.stop()

        shed, outs = asyncio.run(scenario())
        # All submits land synchronously before the dispatcher runs: the
        # first fills the depth-1 queue, the rest are shed at admission.
        assert shed == 3 and len(outs) == 1
        assert service.scheduler.stats()["rejected"] == 3

    def test_process_pool_answers_warm(self):
        qm = _micro_model()
        rng = np.random.default_rng(17)
        service = AthenaService(
            [Tenant("a", TEST_FBS, seed=1), Tenant("b", TEST_FBS, seed=2)],
            exec_config=ExecConfig("process", 2),
            queue_capacity=2,
        )
        service.register_model("micro", qm)
        x_a, x_b = _micro_input(rng), _micro_input(rng)
        out_a, out_b = service.serve_batch(
            [("a", "micro", x_a), ("b", "micro", x_b)]
        )
        # Process workers derive the same keys from the tenant seeds, so
        # outputs match fresh same-seed sessions in the parent exactly.
        assert np.array_equal(out_a, InferenceSession(qm, TEST_FBS, seed=1).run(x_a))
        assert np.array_equal(out_b, InferenceSession(qm, TEST_FBS, seed=2).run(x_b))
        # Runtimes live in the worker processes, not the parent.
        with pytest.raises(ParameterError):
            service.pool.runtime_for(("a", "micro"))
