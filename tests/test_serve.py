"""The layered serving stack: tenants, scheduler, batching, workers, service.

Fast tests pin each layer's contract in isolation — admission control and
fair dequeue (pure asyncio, no ciphertexts), batch assembly and the
shared-key fast path, crash-safe plan persistence, the sharded/in-memory
cache, the picklable session core, the typed request/response dataclasses,
and the service's registration/validation rules. The ``slow``-marked tests
drive real ciphertext inference through the full stack on the TEST_FBS
micro models: multi-tenant isolation, queue-full shedding against a live
service, the process worker pool, cross-request ciphertext batching, and
the headline guarantee that service outputs are bit-identical to direct
:class:`InferenceSession` runs.
"""

from __future__ import annotations

import asyncio
import pickle

import numpy as np
import pytest

import repro.serve.cache as cache_mod
from repro.errors import ParameterError, ServiceOverloaded
from repro.fhe.params import TEST_FBS, TEST_LOOP
from repro.perf import ExecConfig, PerfRecorder
from repro.serve import (
    AthenaService,
    BatchAssembler,
    FairScheduler,
    InferenceRequest,
    InferenceResult,
    InferenceSession,
    LayerStats,
    PlanCache,
    ServiceRequest,
    SessionCore,
    ShardedPlanCache,
    Tenant,
    TenantRegistry,
)
from repro.serve.loadgen import pack_cnn, serve_micro_cnn


def _request(tenant_id: str, model: str = "m") -> ServiceRequest:
    return ServiceRequest(
        tenant_id=tenant_id, model=model, x_q=np.zeros(1, dtype=np.int64)
    )


def _micro_model():
    return serve_micro_cnn(np.random.default_rng(5))


def _micro_input(rng: np.random.Generator) -> np.ndarray:
    return rng.integers(-2, 3, (1, 4, 4)).astype(np.int64)


# -- tenant layer ------------------------------------------------------------


class TestTenantLayer:
    def test_registry_rejects_duplicates_and_unknowns(self):
        registry = TenantRegistry([Tenant("alice", TEST_FBS)])
        with pytest.raises(ParameterError):
            registry.add(Tenant("alice", TEST_FBS, seed=9))
        with pytest.raises(ParameterError):
            registry.get("mallory")
        assert "alice" in registry and "mallory" not in registry

    def test_empty_tenant_id_rejected(self):
        with pytest.raises(ParameterError):
            Tenant("", TEST_FBS)

    def test_key_sizing_from_params(self):
        alice = Tenant("alice", TEST_FBS, seed=1)
        bob = Tenant("bob", TEST_LOOP, seed=2)
        assert alice.key_material_bytes() > 0
        # A bigger parameter set implies more evaluation-key storage.
        assert bob.key_material_bytes() > alice.key_material_bytes()
        registry = TenantRegistry([alice, bob])
        assert registry.total_key_material_bytes() == (
            alice.key_material_bytes() + bob.key_material_bytes()
        )
        assert "MiB" in alice.describe()

    def test_ids_keep_registration_order(self):
        registry = TenantRegistry(
            [Tenant("z", TEST_FBS), Tenant("a", TEST_FBS)]
        )
        assert registry.ids() == ["z", "a"]

    def test_key_domain_shared_iff_params_seed_backend_match(self):
        base = Tenant("a", TEST_FBS, seed=7)
        assert base.key_domain() == Tenant("b", TEST_FBS, seed=7).key_domain()
        assert base.key_domain() != Tenant("c", TEST_FBS, seed=8).key_domain()
        assert base.key_domain() != Tenant("d", TEST_LOOP, seed=7).key_domain()
        assert base.key_domain() != (
            Tenant("e", TEST_FBS, seed=7, backend="serial").key_domain()
        )


# -- typed request/response API ----------------------------------------------


class TestTypedApi:
    def test_request_ids_are_unique_and_auto_assigned(self):
        a = InferenceRequest("t", "m", np.zeros(1, dtype=np.int64))
        b = InferenceRequest("t", "m", np.zeros(1, dtype=np.int64))
        assert a.request_id != b.request_id
        assert a.request_id.startswith("req-")
        assert a.enqueued_at > 0 and a.dequeued_at is None

    def test_service_request_alias_is_the_typed_request(self):
        # One-release compatibility alias for the old tuple-era name.
        assert ServiceRequest is InferenceRequest

    def test_result_defaults_describe_a_solo_run(self):
        result = InferenceResult(
            request_id="req-000001", tenant_id="t", model="m",
            output=np.zeros(1, dtype=np.int64),
        )
        assert result.lane == 0 and result.batch_size == 1
        assert result.batch_id == "" and result.timings == {}

    def test_layer_stats_to_dict_schema(self):
        stats = LayerStats(
            layer="demo", requests=3,
            counters={"runs": 2},
            timings={"run_s": 1.23456789, "missing": None},
            detail={"nested": True},
        )
        d = stats.to_dict()
        assert d["schema_version"] == 1
        assert d["layer"] == "demo" and d["requests"] == 3
        assert d["counters"] == {"runs": 2}
        assert d["timings"] == {"run_s": 1.234568, "missing": None}
        assert d["detail"] == {"nested": True}


# -- scheduler layer ---------------------------------------------------------


class TestFairScheduler:
    def test_per_tenant_bound_isolates_tenants(self):
        sched = FairScheduler(["a", "b"], capacity=2)
        sched.submit(_request("a"))
        sched.submit(_request("a"))
        with pytest.raises(ServiceOverloaded) as excinfo:
            sched.submit(_request("a"))
        # The shed exception carries the payload a client needs to back off.
        assert excinfo.value.tenant_id == "a"
        assert excinfo.value.depth == 2
        assert excinfo.value.capacity == 2
        # Tenant a flooding its queue must not shed tenant b.
        sched.submit(_request("b"))
        assert sched.depth("a") == 2 and sched.depth("b") == 1
        assert sched.accepted == 3 and sched.rejected == 1

    def test_round_robin_dequeue_prevents_starvation(self):
        perf = PerfRecorder()
        sched = FairScheduler(["a", "b"], capacity=8, perf=perf)
        for tid in ["a", "a", "a", "b"]:
            sched.submit(_request(tid))
        sched.close()

        async def drain() -> list[str]:
            order = []
            while (req := await sched.next_request()) is not None:
                order.append(req.tenant_id)
            return order

        # b's lone request is served second despite arriving last.
        assert asyncio.run(drain()) == ["a", "b", "a", "a"]
        assert perf.ops["sched.accepted"] == 4
        assert perf.phase_s["queue_wait"] >= 0

    def test_waiter_wakes_on_submit_and_drains_on_close(self):
        async def scenario():
            sched = FairScheduler(["a"], capacity=1)

            async def waiter():
                first = await sched.next_request()
                second = await sched.next_request()
                return first, second

            task = asyncio.create_task(waiter())
            await asyncio.sleep(0)  # park the waiter on the wakeup event
            sched.submit(_request("a"))
            await asyncio.sleep(0)
            sched.close()
            return await task

        first, second = asyncio.run(scenario())
        assert first.tenant_id == "a" and second is None

    def test_closed_scheduler_sheds(self):
        sched = FairScheduler(["a"])
        sched.close()
        with pytest.raises(ServiceOverloaded):
            sched.submit(_request("a"))

    def test_unknown_tenant_is_a_usage_error(self):
        sched = FairScheduler(["a"])
        with pytest.raises(ParameterError):
            sched.submit(_request("intruder"))

    def test_bad_construction_rejected(self):
        with pytest.raises(ParameterError):
            FairScheduler([])
        with pytest.raises(ParameterError):
            FairScheduler(["a"], capacity=0)

    def test_stats_shape(self):
        sched = FairScheduler(["a", "b"], capacity=3)
        sched.submit(_request("a"))
        stats = sched.stats()
        assert isinstance(stats, LayerStats) and stats.layer == "scheduler"
        assert stats.requests == 1
        counters = stats.counters
        assert counters["queue_depth"] == counters["queue_depth_max"] == 1
        assert stats.detail["capacity_per_tenant"] == 3
        assert stats.detail["per_tenant_depth"] == {"a": 1, "b": 0}
        assert stats.to_dict()["schema_version"] == 1

    def test_take_matching_pops_only_matching_heads(self):
        sched = FairScheduler(["a", "b"], capacity=8)
        first_a, second_a = _request("a"), _request("a")
        first_b = _request("b", model="other")
        for req in (first_a, second_a, first_b):
            sched.submit(req)
        taken = sched.take_matching(lambda r: r.model == "m", limit=8)
        # Both of a's queued requests match; b's head does not, and
        # take_matching never digs past a non-matching head (FIFO per
        # tenant is preserved).
        assert taken == [first_a, second_a]
        assert all(r.dequeued_at is not None for r in taken)
        assert sched.depth("a") == 0 and sched.depth("b") == 1


# -- batch assembly ----------------------------------------------------------


def _assembler(sched, capacity, window_s=0.0):
    return BatchAssembler(
        sched,
        capacity_for=lambda request: capacity,
        group_key=lambda request: (request.tenant_id, request.model),
        window_s=window_s,
    )


class TestBatchAssembler:
    def test_groups_compatible_queued_requests_up_to_capacity(self):
        sched = FairScheduler(["a"], capacity=8)
        reqs = [_request("a") for _ in range(3)]
        for req in reqs:
            sched.submit(req)
        sched.close()

        async def drain():
            assembler = _assembler(sched, capacity=2)
            batches = []
            while (batch := await assembler.next_batch()) is not None:
                batches.append(batch)
            return assembler, batches

        assembler, batches = asyncio.run(drain())
        assert [b.size for b in batches] == [2, 1]
        assert batches[0].requests == reqs[:2]
        assert batches[0].batch_id != batches[1].batch_id
        assert assembler.occupancy_mean == 1.5
        stats = assembler.stats()
        assert stats.layer == "batcher" and stats.requests == 3
        assert stats.counters["batches"] == 2
        assert stats.counters["occupancy_max"] == 2

    def test_incompatible_requests_never_share_a_batch(self):
        sched = FairScheduler(["a", "b"], capacity=8)
        sched.submit(_request("a"))
        sched.submit(_request("b"))
        sched.close()

        async def drain():
            assembler = _assembler(sched, capacity=4)
            batches = []
            while (batch := await assembler.next_batch()) is not None:
                batches.append(batch)
            return batches

        batches = asyncio.run(drain())
        # Distinct group keys (different tenants here): solo batches.
        assert [b.size for b in batches] == [1, 1]

    def test_window_admits_late_co_riders(self):
        async def scenario():
            sched = FairScheduler(["a"], capacity=8)
            assembler = _assembler(sched, capacity=2, window_s=5.0)
            sched.submit(_request("a"))
            task = asyncio.create_task(assembler.next_batch())
            await asyncio.sleep(0)  # leader dequeued, window open
            sched.submit(_request("a"))
            batch = await asyncio.wait_for(task, timeout=2.0)
            return batch

        batch = asyncio.run(scenario())
        # The second request arrived after the leader was dequeued but
        # inside the window: it rides along instead of paying its own run.
        assert batch.size == 2

    def test_capacity_one_skips_the_window(self):
        async def scenario():
            sched = FairScheduler(["a"], capacity=8)
            assembler = _assembler(sched, capacity=1, window_s=60.0)
            sched.submit(_request("a"))
            batch = await asyncio.wait_for(
                assembler.next_batch(), timeout=2.0
            )
            return assembler, batch

        assembler, batch = asyncio.run(scenario())
        assert batch.size == 1
        assert assembler.window_waits == 0

    def test_close_cuts_the_window_short(self):
        async def scenario():
            sched = FairScheduler(["a"], capacity=8)
            assembler = _assembler(sched, capacity=2, window_s=60.0)
            sched.submit(_request("a"))
            task = asyncio.create_task(assembler.next_batch())
            await asyncio.sleep(0)
            sched.close()
            return await asyncio.wait_for(task, timeout=2.0)

        batch = asyncio.run(scenario())
        # A closed scheduler will never supply co-riders: dispatch solo now.
        assert batch.size == 1


# -- crash-safe plan persistence --------------------------------------------


def _loop_program():
    from repro.core.program import lower
    from repro.perf.bench import mnist_cnn_micro

    return lower(mnist_cnn_micro(np.random.default_rng(5)), TEST_LOOP)


class TestCrashSafePersistence:
    def test_crash_mid_write_leaves_no_partial_plan(self, tmp_path, monkeypatch):
        program = _loop_program()
        cache = PlanCache(tmp_path)

        def crash(src, dst):
            raise OSError("simulated crash before publish")

        monkeypatch.setattr(cache_mod.os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            cache.get(program, TEST_LOOP)
        # Nothing published, nothing leaked: a concurrent reader can never
        # observe a truncated artifact, and the staging file is cleaned up.
        assert list(tmp_path.rglob(f"*{PlanCache.SUFFIX}")) == []
        assert list(tmp_path.rglob("*.tmp")) == []
        monkeypatch.undo()
        # The retry compiles again and persists normally.
        plan = cache.get(program, TEST_LOOP)
        path = cache.path_for(plan.model_hash, TEST_LOOP)
        assert path.exists()
        assert PlanCache(tmp_path).get(program, TEST_LOOP).model_hash == plan.model_hash

    def test_hit_miss_accounting(self, tmp_path):
        program = _loop_program()
        cache = PlanCache(tmp_path)
        assert cache.hit_rate is None
        cache.get(program, TEST_LOOP)
        cache.get(program, TEST_LOOP)
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5
        assert cache.stats() == {"hits": 1, "misses": 1, "hit_rate": 0.5}


class TestShardedPlanCache:
    def test_disk_layout_shards_by_fingerprint_prefix(self, tmp_path):
        program = _loop_program()
        cache = ShardedPlanCache(tmp_path)
        plan = cache.get(program, TEST_LOOP)
        path = cache.path_for(plan.model_hash, TEST_LOOP)
        assert path.parent == tmp_path / plan.model_hash[:2]
        assert path.exists()

    def test_memory_layer_shares_one_plan_object(self, tmp_path, monkeypatch):
        program = _loop_program()
        cache = ShardedPlanCache(tmp_path)
        first = cache.get(program, TEST_LOOP)

        def boom(*a, **k):  # pragma: no cover - fails the test if reached
            raise AssertionError("memoized lookup must not touch disk/compile")

        monkeypatch.setattr(cache_mod, "compile_program", boom)
        monkeypatch.setattr(cache_mod, "load_plan", boom)
        assert cache.get(program, TEST_LOOP) is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_memory_only_mode_never_touches_disk(self, monkeypatch):
        program = _loop_program()
        cache = ShardedPlanCache(None)

        def boom(*a, **k):  # pragma: no cover - fails the test if reached
            raise AssertionError("memory-only cache must not write plans")

        monkeypatch.setattr(cache_mod, "dump_plan", boom)
        first = cache.get(program, TEST_LOOP)
        assert cache.get(program, TEST_LOOP) is first
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.root is None

    def test_chunk_is_part_of_the_key(self, tmp_path):
        program = _loop_program()
        cache = ShardedPlanCache(tmp_path)
        unchunked = cache.get(program, TEST_LOOP)
        chunked = cache.get(program, TEST_LOOP, chunk=16)
        assert unchunked is not chunked
        assert cache.misses == 2


# -- session core / runtime split --------------------------------------------


class TestSessionCore:
    def test_build_compiles_and_fingerprints(self):
        core = SessionCore.build(_micro_model(), TEST_FBS, seed=3)
        assert core.fingerprint == core.plan.model_hash
        assert core.compile_s > 0
        assert core.seed == 3

    def test_core_pickles_across_process_boundaries(self):
        core = SessionCore.build(
            _micro_model(), TEST_FBS, seed=3, backend="serial"
        )
        clone = pickle.loads(pickle.dumps(core))
        assert clone.fingerprint == core.fingerprint
        assert clone.program.name == core.program.name
        assert clone.seed == core.seed and clone.backend == "serial"

    def test_facade_composes_core_and_runtime(self):
        session = InferenceSession(_micro_model(), TEST_FBS, seed=3)
        assert session.core.plan is session.plan
        assert session.runtime.pipeline is session.pipeline
        assert session.requests == 0 and session.latencies == []


# -- service façade: registration and validation (no ciphertext runs) --------


class TestServiceValidation:
    def test_needs_tenants_and_sane_transport(self):
        with pytest.raises(ParameterError):
            AthenaService([])
        with pytest.raises(ParameterError):
            AthenaService([Tenant("a", TEST_FBS)], transport_s=-1.0)

    def test_registration_shares_plans_across_tenants(self):
        service = AthenaService(
            [Tenant("a", TEST_FBS, seed=1), Tenant("b", TEST_FBS, seed=2)]
        )
        fingerprint = service.register_model("micro", _micro_model())
        assert service.models == {"micro": fingerprint}
        # First tenant compiles (miss), the second shares the plan (hit).
        assert service.cache.stats() == {
            "hits": 1, "misses": 1, "hit_rate": 0.5,
        }
        with pytest.raises(ParameterError):
            service.register_model("micro", _micro_model())

    def test_prelowered_program_must_match_tenant_params(self):
        from repro.core.program import lower

        program = lower(_micro_model(), TEST_FBS)
        service = AthenaService([Tenant("a", TEST_LOOP)])
        with pytest.raises(ParameterError):
            service.register_model("micro", program)

    def test_submit_requires_started_service(self):
        service = AthenaService([Tenant("a", TEST_FBS)])
        with pytest.raises(ParameterError):
            service.submit_nowait(
                InferenceRequest("a", "micro", np.zeros((1, 4, 4)))
            )

    def test_positional_triple_rejected(self):
        """The tuple-era positional API is gone: typed requests only."""
        service = AthenaService([Tenant("a", TEST_FBS)])
        with pytest.raises(ParameterError, match="InferenceRequest"):
            service.submit_nowait(("a", "micro", np.zeros((1, 4, 4))))


# -- full-stack, real ciphertexts --------------------------------------------


@pytest.mark.slow
class TestServiceEndToEnd:
    def test_outputs_bit_identical_to_direct_sessions(self):
        """The headline guarantee: the service adds layers, not noise."""
        qm = _micro_model()
        rng = np.random.default_rng(11)
        # bob pins the serial dispatch backend; alice inherits the default.
        # Backend selection is per-runtime and context-local, so the pin
        # must never leak into alice's runs (asserted below), and since
        # backends are bit-identical it must not change bob's outputs.
        tenants = [
            Tenant("alice", TEST_FBS, seed=7),
            Tenant("bob", TEST_FBS, seed=8, backend="serial"),
        ]
        service = AthenaService(
            tenants, exec_config=ExecConfig("serial"), queue_capacity=4
        )
        service.register_model("micro", qm)
        batch = [
            InferenceRequest(tid, "micro", _micro_input(rng))
            for tid in ("alice", "bob", "alice", "bob")
        ]
        results = service.serve_batch(batch)

        # Replay each tenant's request stream through a direct session with
        # the same seed: same keys, same encryption-randomness stream, so
        # the service path must reproduce every output bit for bit.
        alice_rt = service.pool.runtime_for(("alice", "micro"))
        bob_rt = service.pool.runtime_for(("bob", "micro"))
        assert alice_rt.backend is None  # bob's pin stayed bob's
        assert bob_rt.backend.name == "serial"

        for tenant in tenants:
            session = InferenceSession(
                qm, TEST_FBS, seed=tenant.seed, backend=tenant.backend
            )
            for result, request in zip(results, batch):
                if result.tenant_id != tenant.tenant_id:
                    continue
                assert result.request_id == request.request_id
                assert result.model == "micro"
                # micro's plan cannot lane-pack (span > n/2): solo batches.
                assert result.batch_size == 1 and result.lane == 0
                assert result.timings["total_s"] >= result.timings["run_s"]
                direct = session.run(request.x_q)
                assert np.array_equal(result.output, direct)
                want = qm.forward_int(request.x_q[None])[0]
                assert np.abs(direct - want).max() <= 2
            # Satellite guarantee: per-request latency percentiles exist.
            stats = session.stats()
            assert stats.requests == 2
            assert 0 < stats.timings["run_p50_s"] <= stats.timings["run_p99_s"]
            assert len(session.latencies) == 2

        stats = service.stats()
        assert isinstance(stats, LayerStats) and stats.layer == "service"
        assert stats.requests == 4
        detail = stats.detail
        assert detail["tenants"]["alice"]["requests"] == 2
        assert detail["tenants"]["bob"]["requests"] == 2
        assert detail["scheduler"]["counters"]["rejected"] == 0
        # Every layer reports through the same schema version.
        nested = [detail["scheduler"], detail["batcher"], detail["workers"]]
        assert {layer["schema_version"] for layer in nested} == {1}
        # Both tenants run the same model under the same params: one
        # compile, one shared plan.
        assert detail["plan_cache"] == {
            "hits": 1, "misses": 1, "hit_rate": 0.5,
        }

    def test_batched_outputs_bit_identical_to_single_runs(self):
        """Cross-tenant lane packing changes cost, never bits.

        The pack model fits two lanes per TEST_FBS ciphertext and its
        weights keep every LUT input a full quantization step from a
        rounding boundary, so plain integer inference, direct single-image
        sessions, and the batched service path must agree exactly.
        """
        qm = pack_cnn(np.random.default_rng(5))
        rng = np.random.default_rng(23)
        # One key domain: same params, same seed => cross-tenant batches.
        tenants = [
            Tenant("alice", TEST_FBS, seed=9), Tenant("bob", TEST_FBS, seed=9)
        ]
        service = AthenaService(
            tenants,
            exec_config=ExecConfig("serial"),
            queue_capacity=4,
            batch_window_s=1.0,
        )
        service.register_model("pack", qm)
        xs = [
            rng.integers(-2, 3, (1, 3, 3)).astype(np.int64) for _ in range(4)
        ]
        batch = [
            InferenceRequest(tid, "pack", x)
            for tid, x in zip(("alice", "bob", "alice", "bob"), xs)
        ]
        results = service.serve_batch(batch)

        # serve_batch admits everything up front, so both 2-lane batches
        # fill straight from the queue.
        assert [r.batch_size for r in results] == [2, 2, 2, 2]
        assert [r.lane for r in results] == [0, 1, 0, 1]
        assert results[0].batch_id == results[1].batch_id
        assert results[2].batch_id == results[3].batch_id
        assert results[0].batch_id != results[2].batch_id

        singles = [
            InferenceSession(qm, TEST_FBS, seed=9).run(x) for x in xs
        ]
        for result, x, single in zip(results, xs, singles):
            want = qm.forward_int(x[None])[0]
            assert np.array_equal(single, want)
            assert np.array_equal(result.output, want)

        stats = service.stats()
        batcher = stats.detail["batcher"]
        assert batcher["counters"]["batches"] == 2
        assert batcher["counters"]["occupancy_max"] == 2
        assert batcher["detail"]["occupancy_mean"] == 2.0
        workers = stats.detail["workers"]
        assert workers["counters"]["runs"] == 2 and workers["requests"] == 4

    def test_batching_respects_distinct_key_domains(self):
        """Different seeds => different keys => no shared ciphertexts."""
        qm = pack_cnn(np.random.default_rng(5))
        rng = np.random.default_rng(29)
        service = AthenaService(
            [Tenant("alice", TEST_FBS, seed=1), Tenant("bob", TEST_FBS, seed=2)],
            exec_config=ExecConfig("serial"),
            queue_capacity=4,
            batch_window_s=0.05,
        )
        service.register_model("pack", qm)
        batch = [
            InferenceRequest(tid, "pack",
                             rng.integers(-2, 3, (1, 3, 3)).astype(np.int64))
            for tid in ("alice", "bob", "alice", "bob")
        ]
        results = service.serve_batch(batch)
        # Same-tenant requests may still pair; alice/bob never mix.
        for result, request in zip(results, batch):
            assert np.array_equal(
                result.output, qm.forward_int(request.x_q[None])[0]
            )
        by_batch: dict[str, set[str]] = {}
        for result in results:
            by_batch.setdefault(result.batch_id, set()).add(result.tenant_id)
        assert all(len(tids) == 1 for tids in by_batch.values())

    def test_serve_batch_rejects_tuple_era_requests(self):
        """The positional shim was removed: tuples fail fast, typed works."""
        qm = _micro_model()
        rng = np.random.default_rng(31)
        service = AthenaService(
            [Tenant("a", TEST_FBS, seed=1)],
            exec_config=ExecConfig("serial"),
            queue_capacity=2,
        )
        service.register_model("micro", qm)
        x_q = _micro_input(rng)
        with pytest.raises(ParameterError, match="InferenceRequest"):
            service.serve_batch([("a", "micro", x_q)])
        results = service.serve_batch([InferenceRequest("a", "micro", x_q)])
        assert np.array_equal(
            results[0].output, InferenceSession(qm, TEST_FBS, seed=1).run(x_q)
        )

    def test_queue_full_sheds_against_live_service(self):
        qm = _micro_model()
        rng = np.random.default_rng(13)
        service = AthenaService(
            [Tenant("a", TEST_FBS, seed=1)],
            exec_config=ExecConfig("thread", 1),
            queue_capacity=1,
        )
        service.register_model("micro", qm)

        def submit():
            return service.submit_nowait(
                InferenceRequest("a", "micro", _micro_input(rng))
            )

        async def scenario():
            await service.start()
            try:
                accepted = [submit()]
                shed = []
                for _ in range(3):
                    try:
                        accepted.append(submit())
                    except ServiceOverloaded as exc:
                        shed.append(exc)
                results = await asyncio.gather(*accepted)
                return shed, results
            finally:
                await service.stop()

        shed, results = asyncio.run(scenario())
        # All submits land synchronously before the dispatcher runs: the
        # first fills the depth-1 queue, the rest are shed at admission —
        # each rejection carrying the payload a client backs off on.
        assert len(shed) == 3 and len(results) == 1
        assert all(
            (exc.tenant_id, exc.depth, exc.capacity) == ("a", 1, 1)
            for exc in shed
        )
        assert service.scheduler.stats().counters["rejected"] == 3

    def test_process_pool_answers_warm(self):
        qm = _micro_model()
        rng = np.random.default_rng(17)
        service = AthenaService(
            [Tenant("a", TEST_FBS, seed=1), Tenant("b", TEST_FBS, seed=2)],
            exec_config=ExecConfig("process", 2),
            queue_capacity=2,
        )
        service.register_model("micro", qm)
        x_a, x_b = _micro_input(rng), _micro_input(rng)
        res_a, res_b = service.serve_batch(
            [
                InferenceRequest("a", "micro", x_a),
                InferenceRequest("b", "micro", x_b),
            ]
        )
        # Process workers derive the same keys from the tenant seeds, so
        # outputs match fresh same-seed sessions in the parent exactly.
        assert np.array_equal(
            res_a.output, InferenceSession(qm, TEST_FBS, seed=1).run(x_a)
        )
        assert np.array_equal(
            res_b.output, InferenceSession(qm, TEST_FBS, seed=2).run(x_b)
        )
        # Runtimes live in the worker processes, not the parent.
        with pytest.raises(ParameterError):
            service.pool.runtime_for(("a", "micro"))
