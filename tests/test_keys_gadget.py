"""Tests for key material: gadget decomposition and keyswitch keys."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.fhe.bfv import BfvContext, Plaintext
from repro.fhe.keys import KeySwitchKey, apply_keyswitch, gadget_decompose
from repro.fhe.params import TEST_TINY
from repro.fhe.poly import RnsPoly
from repro.utils.sampling import Sampler


@pytest.fixture(scope="module")
def ctx():
    return BfvContext(TEST_TINY, seed=55)


@pytest.fixture(scope="module")
def keys(ctx):
    return ctx.keygen()


class TestGadgetDecompose:
    def test_recomposition(self, rng):
        p = TEST_TINY
        poly = RnsPoly.from_int_coeffs(rng.integers(0, 10**9, p.n), p.moduli)
        w = 6
        digits = -(-p.q.bit_length() // w)
        parts = gadget_decompose(poly, w, digits)
        acc = RnsPoly.zeros(p.n, p.moduli)
        power = 1
        for d in parts:
            acc = acc + d.scalar_mul(power)
            power <<= w
        assert acc == poly

    def test_digits_bounded(self, rng):
        p = TEST_TINY
        poly = RnsPoly.from_int_coeffs(rng.integers(0, 10**6, p.n), p.moduli)
        parts = gadget_decompose(poly, 6, -(-p.q.bit_length() // 6))
        for d in parts:
            coeffs = d.to_int_coeffs(centered=False)
            assert max(coeffs) < 64

    def test_too_few_digits_raises(self, rng):
        p = TEST_TINY
        poly = RnsPoly.from_int_coeffs([p.q - 1] + [0] * (p.n - 1), p.moduli)
        with pytest.raises(ParameterError):
            gadget_decompose(poly, 6, 2)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_recomposition_random(self, seed):
        p = TEST_TINY
        rng = np.random.default_rng(seed)
        poly = RnsPoly.from_int_coeffs(rng.integers(0, 2**40, p.n), p.moduli)
        parts = gadget_decompose(poly, 8, -(-p.q.bit_length() // 8))
        acc = RnsPoly.zeros(p.n, p.moduli)
        power = 1
        for d in parts:
            acc = acc + d.scalar_mul(power)
            power <<= 8
        assert acc == poly


class TestKeySwitchKeys:
    def test_keyswitch_moves_component(self, ctx, keys, rng):
        """apply_keyswitch(c, KSK_{g->s}) must satisfy
        out0 + out1*s ~ c*g (mod Q) up to small noise."""
        sk, _ = keys
        p = ctx.params
        sampler = Sampler(77)
        target = RnsPoly.from_int_coeffs(sampler.ternary(p.n), p.moduli)
        ksk = KeySwitchKey.generate(target, sk, sampler)
        component = RnsPoly.from_int_coeffs(rng.integers(0, 1000, p.n), p.moduli)
        out0, out1 = apply_keyswitch(component, ksk)
        phase = out0 + out1 * sk.poly
        expected = component * target
        residual = (phase - expected).to_int_coeffs(centered=True)
        # noise ~ digits * N * 2^w * sigma, far below Q
        assert max(abs(v) for v in residual) < p.q / 2**20

    def test_secret_norm(self, keys):
        sk, _ = keys
        assert sk.norm_sq == int(np.sum(sk.coeffs**2))
        assert sk.norm_sq <= TEST_TINY.n

    def test_relin_key_enables_cmult(self, ctx, keys, rng):
        sk, pk = keys
        p = ctx.params
        rlk = ctx.relin_key(sk)
        m1 = rng.integers(0, 10, p.n)
        m2 = rng.integers(0, 10, p.n)
        out = ctx.cmult(
            ctx.encrypt(Plaintext.from_coeffs(m1, p), pk),
            ctx.encrypt(Plaintext.from_coeffs(m2, p), pk),
            rlk,
        )
        from repro.fhe.ntt import negacyclic_mul_exact

        expected = np.mod(negacyclic_mul_exact(list(m1), list(m2)), p.t)
        assert np.array_equal(ctx.decrypt(out, sk).coeffs, expected)

    def test_galois_key_wrong_element_breaks(self, ctx, keys, rng):
        # Using a Galois key for the wrong element must NOT decrypt correctly
        # (sanity check that keyswitching is element-specific).
        sk, pk = keys
        p = ctx.params
        gk5 = ctx.galois_key(sk, 5)
        v = rng.integers(0, p.t, p.n)
        ct = ctx.encrypt(Plaintext.from_coeffs(v, p), pk)
        wrong = ctx.apply_galois(ct, 3, gk5)  # element 3, key for 5
        dec = ctx.decrypt(wrong, sk).coeffs
        correct = ctx.decrypt(ctx.apply_galois(ct, 5, gk5), sk).coeffs
        assert not np.array_equal(dec, correct)
