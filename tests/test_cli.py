"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_params_command(self, capsys):
        assert main(["params", "test-tiny"]) == 0
        out = capsys.readouterr().out
        assert "test-tiny" in out and "security" in out

    def test_params_all(self, capsys):
        assert main(["params"]) == 0
        out = capsys.readouterr().out
        assert "athena" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "table42"]) == 2

    def test_static_experiment(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Athena" in out

    def test_table8_experiment(self, capsys):
        assert main(["experiment", "table8"]) == 0
        assert "scratchpad" in capsys.readouterr().out

    def test_infer_command(self, capsys, tmp_path, monkeypatch):
        import repro.eval.zoo as zoo

        monkeypatch.setattr(zoo, "ARTIFACTS", tmp_path)
        monkeypatch.setitem(zoo.RECIPES, "mnist_cnn", (0.5, 1, 0.05, 256))
        assert main(["infer", "mnist_cnn", "--count", "32"]) == 0
        out = capsys.readouterr().out
        assert "ciphertext accuracy" in out

    def test_ablation_command(self, capsys):
        assert main(["ablation", "--model", "mnist_cnn"]) == 0
        assert "no-two-region-dataflow" in capsys.readouterr().out
