"""Property tests for the slot algebra (hypercube structure, rotations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.fhe.ntt import negacyclic_mul_exact
from repro.fhe.slots import (
    _slot_permutation,
    rotation_galois_element,
    row_swap_element,
    slot_decode,
    slot_encode,
)

N, T = 32, 257

vectors = st.integers(min_value=0, max_value=2**32).map(
    lambda s: np.random.default_rng(s).integers(0, T, N)
)


class TestPermutation:
    def test_is_bijection(self):
        perm = _slot_permutation(N, T)
        assert sorted(perm) == list(range(N))

    def test_cached_identity(self):
        assert _slot_permutation(N, T) is _slot_permutation(N, T)

    def test_unsupported_modulus(self):
        with pytest.raises(ParameterError):
            _slot_permutation(64, 17)


class TestEncodeDecode:
    @given(vectors)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, v):
        assert np.array_equal(slot_decode(slot_encode(v, N, T), N, T), v)

    @given(vectors, vectors)
    @settings(max_examples=20, deadline=None)
    def test_additive(self, a, b):
        ea = slot_encode(a, N, T)
        eb = slot_encode(b, N, T)
        assert np.array_equal(slot_decode((ea + eb) % T, N, T), (a + b) % T)

    @given(vectors, vectors)
    @settings(max_examples=15, deadline=None)
    def test_multiplicative(self, a, b):
        prod = np.mod(
            negacyclic_mul_exact(list(slot_encode(a, N, T)), list(slot_encode(b, N, T))),
            T,
        ).astype(np.int64)
        assert np.array_equal(slot_decode(prod, N, T), a * b % T)

    def test_wrong_length_raises(self):
        with pytest.raises(ParameterError):
            slot_encode(np.zeros(N + 1, dtype=np.int64), N, T)


class TestGaloisStructure:
    @given(vectors, st.integers(min_value=0, max_value=N // 2 - 1))
    @settings(max_examples=25, deadline=None)
    def test_rotation_permutes_rows(self, v, amount):
        """sigma_{3^a} on the encoding rotates both hypercube rows left."""
        coeffs = slot_encode(v, N, T)
        k = rotation_galois_element(N, amount)
        # Apply the automorphism X -> X^k directly on the Z_t coefficients.
        j = np.arange(N)
        dest = (j * k) % (2 * N)
        sign = np.where(dest >= N, -1, 1)
        dest = np.where(dest >= N, dest - N, dest)
        out = np.zeros(N, dtype=np.int64)
        out[dest] = coeffs * sign % T
        half = N // 2
        got = slot_decode(out % T, N, T)
        expected = np.concatenate([np.roll(v[:half], -amount), np.roll(v[half:], -amount)])
        assert np.array_equal(got, expected % T)

    def test_rotation_elements_form_group(self):
        # 3^a * 3^b = 3^(a+b) mod 2N
        a, b = 3, 7
        ka = rotation_galois_element(N, a)
        kb = rotation_galois_element(N, b)
        assert ka * kb % (2 * N) == rotation_galois_element(N, a + b)

    def test_row_swap_is_involution(self):
        k = row_swap_element(N)
        assert k * k % (2 * N) == 1

    def test_rotation_full_cycle_is_identity(self):
        assert rotation_galois_element(N, N // 2) == 1
