"""Tests for the wire formats (ciphertexts, LWE batches, secret keys)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.fhe import serialize
from repro.fhe.bfv import Plaintext
from repro.fhe.lwe import LweBatch
from repro.fhe.params import TEST_SMALL, TEST_TINY


class TestCiphertextRoundtrip:
    def test_roundtrip_decrypts(self, tiny_ctx, tiny_keys, rng):
        sk, pk = tiny_keys
        p = tiny_ctx.params
        m = rng.integers(0, p.t, p.n)
        ct = tiny_ctx.encrypt(Plaintext.from_coeffs(m, p), pk)
        raw = serialize.dump_ciphertext(ct)
        back = serialize.load_ciphertext(raw, p)
        assert np.array_equal(tiny_ctx.decrypt(back, sk).coeffs, m)
        assert back.noise_bits == ct.noise_bits

    def test_roundtrip_still_homomorphic(self, tiny_ctx, tiny_keys, rng):
        sk, pk = tiny_keys
        p = tiny_ctx.params
        m = rng.integers(0, 20, p.n)
        ct = tiny_ctx.encrypt(Plaintext.from_coeffs(m, p), pk)
        back = serialize.load_ciphertext(serialize.dump_ciphertext(ct), p)
        doubled = tiny_ctx.smult(back, 2)
        assert np.array_equal(tiny_ctx.decrypt(doubled, sk).coeffs, 2 * m % p.t)

    def test_wrong_params_rejected(self, tiny_ctx, tiny_keys, rng):
        _, pk = tiny_keys
        p = tiny_ctx.params
        ct = tiny_ctx.encrypt(Plaintext.from_coeffs([1], p), pk)
        raw = serialize.dump_ciphertext(ct)
        with pytest.raises(ParameterError):
            serialize.load_ciphertext(raw, TEST_SMALL)

    def test_garbage_rejected(self):
        with pytest.raises(ParameterError):
            serialize.load_ciphertext(b"\x00" * 64, TEST_TINY)

    def test_truncation_rejected(self, tiny_ctx, tiny_keys):
        _, pk = tiny_keys
        p = tiny_ctx.params
        ct = tiny_ctx.encrypt(Plaintext.from_coeffs([1], p), pk)
        raw = serialize.dump_ciphertext(ct)
        with pytest.raises(ParameterError):
            serialize.load_ciphertext(raw[: len(raw) // 2], p)


class TestLweBatch:
    def test_roundtrip(self, rng):
        batch = LweBatch(
            rng.integers(0, 257, (10, 16)).astype(np.int64),
            rng.integers(0, 257, 10).astype(np.int64),
            257,
        )
        back = serialize.load_lwe_batch(serialize.dump_lwe_batch(batch))
        assert np.array_equal(back.a, batch.a)
        assert np.array_equal(back.b, batch.b)
        assert back.modulus == 257

    def test_garbage_rejected(self):
        with pytest.raises(ParameterError):
            serialize.load_lwe_batch(b"nope nope nope nope nope")


class TestSecretKey:
    def test_requires_opt_in(self, tiny_keys):
        sk, _ = tiny_keys
        with pytest.raises(ParameterError):
            serialize.dump_secret_key(sk)

    def test_roundtrip(self, tiny_ctx, tiny_keys, rng):
        sk, pk = tiny_keys
        p = tiny_ctx.params
        raw = serialize.dump_secret_key(sk, allow_secret=True)
        back = serialize.load_secret_key(raw, p)
        # the restored key decrypts ciphertexts made under the original
        m = rng.integers(0, p.t, p.n)
        ct = tiny_ctx.encrypt(Plaintext.from_coeffs(m, p), pk)
        assert np.array_equal(tiny_ctx.decrypt(ct, back).coeffs, m)


class TestFingerprint:
    def test_distinct_presets_distinct_fingerprints(self):
        from repro.fhe.params import PRESETS

        prints = {serialize.params_fingerprint(p) for p in PRESETS.values()}
        assert len(prints) == len(PRESETS)

    def test_guess_params(self, tiny_ctx, tiny_keys):
        _, pk = tiny_keys
        p = tiny_ctx.params
        ct = tiny_ctx.encrypt(Plaintext.from_coeffs([1], p), pk)
        raw = serialize.dump_ciphertext(ct)
        assert serialize.guess_params(raw) is p
        assert serialize.guess_params(b"xx") is None
