"""Tests for the wire formats (ciphertexts, LWE batches, secret keys)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.fhe import serialize
from repro.fhe.bfv import Plaintext
from repro.fhe.lwe import LweBatch
from repro.fhe.params import TEST_SMALL, TEST_TINY


class TestCiphertextRoundtrip:
    def test_roundtrip_decrypts(self, tiny_ctx, tiny_keys, rng):
        sk, pk = tiny_keys
        p = tiny_ctx.params
        m = rng.integers(0, p.t, p.n)
        ct = tiny_ctx.encrypt(Plaintext.from_coeffs(m, p), pk)
        raw = serialize.dump_ciphertext(ct)
        back = serialize.load_ciphertext(raw, p)
        assert np.array_equal(tiny_ctx.decrypt(back, sk).coeffs, m)
        assert back.noise_bits == ct.noise_bits

    def test_roundtrip_still_homomorphic(self, tiny_ctx, tiny_keys, rng):
        sk, pk = tiny_keys
        p = tiny_ctx.params
        m = rng.integers(0, 20, p.n)
        ct = tiny_ctx.encrypt(Plaintext.from_coeffs(m, p), pk)
        back = serialize.load_ciphertext(serialize.dump_ciphertext(ct), p)
        doubled = tiny_ctx.smult(back, 2)
        assert np.array_equal(tiny_ctx.decrypt(doubled, sk).coeffs, 2 * m % p.t)

    def test_wrong_params_rejected(self, tiny_ctx, tiny_keys, rng):
        _, pk = tiny_keys
        p = tiny_ctx.params
        ct = tiny_ctx.encrypt(Plaintext.from_coeffs([1], p), pk)
        raw = serialize.dump_ciphertext(ct)
        with pytest.raises(ParameterError):
            serialize.load_ciphertext(raw, TEST_SMALL)

    def test_garbage_rejected(self):
        with pytest.raises(ParameterError):
            serialize.load_ciphertext(b"\x00" * 64, TEST_TINY)

    def test_truncation_rejected(self, tiny_ctx, tiny_keys):
        _, pk = tiny_keys
        p = tiny_ctx.params
        ct = tiny_ctx.encrypt(Plaintext.from_coeffs([1], p), pk)
        raw = serialize.dump_ciphertext(ct)
        with pytest.raises(ParameterError):
            serialize.load_ciphertext(raw[: len(raw) // 2], p)


class TestLweBatch:
    def test_roundtrip(self, rng):
        batch = LweBatch(
            rng.integers(0, 257, (10, 16)).astype(np.int64),
            rng.integers(0, 257, 10).astype(np.int64),
            257,
        )
        back = serialize.load_lwe_batch(serialize.dump_lwe_batch(batch))
        assert np.array_equal(back.a, batch.a)
        assert np.array_equal(back.b, batch.b)
        assert back.modulus == 257

    def test_garbage_rejected(self):
        with pytest.raises(ParameterError):
            serialize.load_lwe_batch(b"nope nope nope nope nope")


class TestSecretKey:
    def test_requires_opt_in(self, tiny_keys):
        sk, _ = tiny_keys
        with pytest.raises(ParameterError):
            serialize.dump_secret_key(sk)

    def test_roundtrip(self, tiny_ctx, tiny_keys, rng):
        sk, pk = tiny_keys
        p = tiny_ctx.params
        raw = serialize.dump_secret_key(sk, allow_secret=True)
        back = serialize.load_secret_key(raw, p)
        # the restored key decrypts ciphertexts made under the original
        m = rng.integers(0, p.t, p.n)
        ct = tiny_ctx.encrypt(Plaintext.from_coeffs(m, p), pk)
        assert np.array_equal(tiny_ctx.decrypt(ct, back).coeffs, m)


class TestFingerprint:
    def test_distinct_presets_distinct_fingerprints(self):
        from repro.fhe.params import PRESETS

        prints = {serialize.params_fingerprint(p) for p in PRESETS.values()}
        assert len(prints) == len(PRESETS)

    def test_guess_params(self, tiny_ctx, tiny_keys):
        _, pk = tiny_keys
        p = tiny_ctx.params
        ct = tiny_ctx.encrypt(Plaintext.from_coeffs([1], p), pk)
        raw = serialize.dump_ciphertext(ct)
        assert serialize.guess_params(raw) is p
        assert serialize.guess_params(b"xx") is None


class TestPlanWireV3:
    """The v3 plan format: tuning config on the wire, per-step overrides
    honored at load, and layout-bearing steps elided as recompile stubs."""

    def _micro_program(self):
        from repro.core.program import lower
        from repro.fhe.params import TEST_LOOP
        from repro.perf.bench import mnist_cnn_micro

        return lower(mnist_cnn_micro(np.random.default_rng(5)), TEST_LOOP)

    def test_tuning_survives_round_trip(self):
        from repro.core.lowering import StepEncodingChoice, TuningConfig
        from repro.core.plan import compile_program
        from repro.fhe.params import TEST_LOOP

        tuning = TuningConfig(
            (("qconv0", StepEncodingChoice(chunk=32, bsgs=4)),))
        plan = compile_program(
            self._micro_program(), TEST_LOOP, chunk=16, tuning=tuning)
        loaded = serialize.load_plan(serialize.dump_plan(plan), TEST_LOOP)
        assert loaded.tuning is not None
        assert loaded.tuning.tag() == tuning.tag()
        assert loaded.model_hash == plan.model_hash

    def test_per_step_overrides_honored_at_load(self):
        from repro.core.lowering import StepEncodingChoice, TuningConfig
        from repro.core.plan import compile_program
        from repro.fhe.params import TEST_LOOP

        tuning = TuningConfig(
            (("qconv0", StepEncodingChoice(chunk=32, bsgs=4)),))
        plan = compile_program(
            self._micro_program(), TEST_LOOP, chunk=16, tuning=tuning)
        loaded = serialize.load_plan(serialize.dump_plan(plan), TEST_LOOP)
        conv = loaded.steps[0]
        # The chunk opt-out keeps the round single-tile despite the global
        # chunk=16; the BSGS override reaches the rebuilt FBS schedule.
        assert conv.tiles is None
        assert conv.fbs.bs == 4
        assert loaded.needs_upgrade() is False

    def test_untuned_plan_has_no_tuning(self):
        from repro.core.plan import compile_program
        from repro.fhe.params import TEST_LOOP

        plan = compile_program(self._micro_program(), TEST_LOOP)
        loaded = serialize.load_plan(serialize.dump_plan(plan), TEST_LOOP)
        assert loaded.tuning is None

    def test_layout_bearing_steps_become_stubs(self):
        from repro.core.plan import compile_program
        from repro.core.program import lower
        from repro.fhe.params import TEST_LOOP
        from repro.perf.bench import resnet_block_micro

        program = lower(
            resnet_block_micro(np.random.default_rng(5)), TEST_LOOP)
        plan = compile_program(program, TEST_LOOP)
        loaded = serialize.load_plan(serialize.dump_plan(plan), TEST_LOOP)
        kinds = [s.kind for s in loaded.steps]
        assert kinds == [s.kind for s in plan.steps]
        # The residual (and the placed-packing stem feeding it) cannot be
        # fully captured on the wire; they come back as recompile stubs.
        stubs = [getattr(s, "stub", False) for s in loaded.steps]
        assert stubs[1] is True  # the residual join
        assert loaded.needs_upgrade() is True
        # The plain tail FC round-trips in full.
        assert stubs[-1] is False

    def test_truncated_plan_rejected(self):
        from repro.core.plan import compile_program
        from repro.fhe.params import TEST_LOOP

        raw = serialize.dump_plan(
            compile_program(self._micro_program(), TEST_LOOP))
        with pytest.raises(ParameterError):
            serialize.load_plan(raw[: len(raw) // 3], TEST_LOOP)

    @pytest.mark.slow
    def test_stub_upgrade_runs_bit_identical(self):
        """A loaded stub-bearing plan recompiles in the executor and then
        produces byte-identical outputs to the original in-memory plan."""
        from repro.core.framework import AthenaPipeline
        from repro.core.plan import compile_program
        from repro.core.program import lower
        from repro.fhe.params import TEST_LOOP
        from repro.perf.bench import resnet_block_micro

        rng = np.random.default_rng(5)
        qm = resnet_block_micro(rng)
        program = lower(qm, TEST_LOOP)
        x_q = rng.integers(-2, 3, (1, 6, 6)).astype(np.int64)

        plan = compile_program(program, TEST_LOOP)
        want = AthenaPipeline(TEST_LOOP, seed=7).run_program(
            program, x_q, plan=plan)

        loaded = serialize.load_plan(serialize.dump_plan(plan), TEST_LOOP)
        assert loaded.needs_upgrade()
        got = AthenaPipeline(TEST_LOOP, seed=7).run_program(
            program, x_q, plan=loaded)
        assert np.array_equal(got, want)
