"""Tests for the BFV scheme: encryption, homomorphic ops, slots, Galois."""

import numpy as np
import pytest

from repro.errors import NoiseBudgetExhausted, ParameterError
from repro.fhe import slots as slotlib
from repro.fhe.bfv import BfvCiphertext, Plaintext
from repro.fhe.ntt import negacyclic_mul_exact
from repro.fhe.params import TEST_TINY


class TestPlaintext:
    def test_from_coeffs_pads(self):
        pt = Plaintext.from_coeffs([1, 2, 3], TEST_TINY)
        assert pt.coeffs.shape == (TEST_TINY.n,)
        assert pt.coeffs[0] == 1 and pt.coeffs[3] == 0

    def test_slot_roundtrip(self, rng):
        v = rng.integers(0, TEST_TINY.t, TEST_TINY.n)
        pt = Plaintext.from_slots(v, TEST_TINY)
        assert np.array_equal(pt.to_slots(), v % TEST_TINY.t)

    def test_slot_encode_is_linear(self, rng):
        t, n = TEST_TINY.t, TEST_TINY.n
        a = rng.integers(0, t, n)
        b = rng.integers(0, t, n)
        ea = slotlib.slot_encode(a, n, t)
        eb = slotlib.slot_encode(b, n, t)
        eab = slotlib.slot_encode((a + b) % t, n, t)
        assert np.array_equal(eab, (ea + eb) % t)

    def test_slot_product_is_pointwise(self, rng):
        # ring product of encodings == slot-wise product of values
        t, n = TEST_TINY.t, TEST_TINY.n
        a = rng.integers(0, t, n)
        b = rng.integers(0, t, n)
        pa = slotlib.slot_encode(a, n, t)
        pb = slotlib.slot_encode(b, n, t)
        prod = np.mod(negacyclic_mul_exact(list(pa), list(pb)), t)
        assert np.array_equal(
            slotlib.slot_decode(prod.astype(np.int64), n, t), a * b % t
        )

    def test_unsupported_slot_count(self):
        with pytest.raises(ParameterError):
            slotlib.slot_encode(np.zeros(64, dtype=np.int64), 64, 17)  # 128 !| 16


class TestEncryptDecrypt:
    def test_roundtrip(self, small_ctx, small_keys, rng):
        sk, pk = small_keys
        m = rng.integers(0, small_ctx.params.t, small_ctx.params.n)
        ct = small_ctx.encrypt(Plaintext.from_coeffs(m, small_ctx.params), pk)
        assert np.array_equal(small_ctx.decrypt(ct, sk).coeffs, m)

    def test_symmetric_roundtrip(self, small_ctx, small_keys, rng):
        sk, _ = small_keys
        m = rng.integers(0, small_ctx.params.t, small_ctx.params.n)
        ct = small_ctx.encrypt_symmetric(Plaintext.from_coeffs(m, small_ctx.params), sk)
        assert np.array_equal(small_ctx.decrypt(ct, sk).coeffs, m)

    def test_fresh_noise_within_estimate(self, small_ctx, small_keys, rng):
        sk, pk = small_keys
        m = rng.integers(0, small_ctx.params.t, small_ctx.params.n)
        ct = small_ctx.encrypt(Plaintext.from_coeffs(m, small_ctx.params), pk)
        assert small_ctx.true_noise_bits(ct, sk) <= ct.noise_bits + 1

    def test_distinct_encryptions_differ(self, small_ctx, small_keys):
        _, pk = small_keys
        pt = Plaintext.from_coeffs([1], small_ctx.params)
        c1 = small_ctx.encrypt(pt, pk)
        c2 = small_ctx.encrypt(pt, pk)
        assert c1.c0 != c2.c0  # fresh randomness per encryption

    def test_budget_exhaustion_raises(self, small_ctx):
        ct = BfvCiphertext.__new__(BfvCiphertext)
        ct.params = small_ctx.params
        ct.noise_bits = 10**6
        with pytest.raises(NoiseBudgetExhausted):
            ct.assert_budget()


class TestHomomorphicOps:
    def test_add_sub(self, small_ctx, small_keys, rng):
        sk, pk = small_keys
        p = small_ctx.params
        m1 = rng.integers(0, p.t, p.n)
        m2 = rng.integers(0, p.t, p.n)
        c1 = small_ctx.encrypt(Plaintext.from_coeffs(m1, p), pk)
        c2 = small_ctx.encrypt(Plaintext.from_coeffs(m2, p), pk)
        assert np.array_equal(
            small_ctx.decrypt(small_ctx.add(c1, c2), sk).coeffs, (m1 + m2) % p.t
        )
        assert np.array_equal(
            small_ctx.decrypt(small_ctx.sub(c1, c2), sk).coeffs, (m1 - m2) % p.t
        )

    def test_add_plain(self, small_ctx, small_keys, rng):
        sk, pk = small_keys
        p = small_ctx.params
        m1 = rng.integers(0, p.t, p.n)
        m2 = rng.integers(0, p.t, p.n)
        ct = small_ctx.encrypt(Plaintext.from_coeffs(m1, p), pk)
        out = small_ctx.add_plain(ct, Plaintext.from_coeffs(m2, p))
        assert np.array_equal(small_ctx.decrypt(out, sk).coeffs, (m1 + m2) % p.t)

    @pytest.mark.parametrize("scalar", [0, 1, 7, -3, 256])
    def test_smult(self, small_ctx, small_keys, rng, scalar):
        sk, pk = small_keys
        p = small_ctx.params
        m = rng.integers(0, p.t, p.n)
        ct = small_ctx.encrypt(Plaintext.from_coeffs(m, p), pk)
        out = small_ctx.smult(ct, scalar)
        assert np.array_equal(small_ctx.decrypt(out, sk).coeffs, m * scalar % p.t)

    def test_pmult_polynomial(self, small_ctx, small_keys, rng):
        sk, pk = small_keys
        p = small_ctx.params
        m = rng.integers(0, p.t, p.n)
        w = rng.integers(-4, 5, p.n)
        ct = small_ctx.encrypt(Plaintext.from_coeffs(m, p), pk)
        out = small_ctx.pmult(ct, Plaintext.from_coeffs(w, p))
        expected = np.mod(negacyclic_mul_exact(list(m), list(w)), p.t)
        assert np.array_equal(small_ctx.decrypt(out, sk).coeffs, expected)

    def test_cmult(self, small_ctx, small_keys, rng):
        sk, pk = small_keys
        p = small_ctx.params
        rlk = small_ctx.relin_key(sk)
        m1 = rng.integers(0, p.t, p.n)
        m2 = rng.integers(0, p.t, p.n)
        c1 = small_ctx.encrypt(Plaintext.from_coeffs(m1, p), pk)
        c2 = small_ctx.encrypt(Plaintext.from_coeffs(m2, p), pk)
        out = small_ctx.cmult(c1, c2, rlk)
        expected = np.mod(negacyclic_mul_exact(list(m1), list(m2)), p.t)
        assert np.array_equal(small_ctx.decrypt(out, sk).coeffs, expected)

    def test_cmult_slotwise(self, small_ctx, small_keys, rng):
        # In slot view, CMult is pointwise multiplication.
        sk, pk = small_keys
        p = small_ctx.params
        rlk = small_ctx.relin_key(sk)
        v1 = rng.integers(0, p.t, p.n)
        v2 = rng.integers(0, p.t, p.n)
        c1 = small_ctx.encrypt(Plaintext.from_slots(v1, p), pk)
        c2 = small_ctx.encrypt(Plaintext.from_slots(v2, p), pk)
        out = small_ctx.cmult(c1, c2, rlk)
        assert np.array_equal(
            small_ctx.decrypt(out, sk).to_slots(), v1 * v2 % p.t
        )

    def test_square(self, small_ctx, small_keys, rng):
        sk, pk = small_keys
        p = small_ctx.params
        rlk = small_ctx.relin_key(sk)
        v = rng.integers(0, p.t, p.n)
        ct = small_ctx.encrypt(Plaintext.from_slots(v, p), pk)
        out = small_ctx.square(ct, rlk)
        assert np.array_equal(small_ctx.decrypt(out, sk).to_slots(), v * v % p.t)

    def test_noise_grows_with_ops(self, small_ctx, small_keys, rng):
        sk, pk = small_keys
        p = small_ctx.params
        m = rng.integers(0, p.t, p.n)
        ct = small_ctx.encrypt(Plaintext.from_coeffs(m, p), pk)
        before = small_ctx.true_noise_bits(ct, sk)
        after = small_ctx.true_noise_bits(
            small_ctx.pmult(ct, Plaintext.from_coeffs(rng.integers(0, p.t, p.n), p)),
            sk,
        )
        assert after > before


class TestGaloisAndRotations:
    def test_rotate_by_zero_is_identity(self, small_ctx, small_keys, rng):
        _, pk = small_keys
        p = small_ctx.params
        ct = small_ctx.encrypt(Plaintext.from_slots(rng.integers(0, p.t, p.n), p), pk)
        assert small_ctx.rotate_slots(ct, 0, {}) is ct

    @pytest.mark.parametrize("amount", [1, 2, 5])
    def test_rotation(self, small_ctx, small_keys, rng, amount):
        sk, pk = small_keys
        p = small_ctx.params
        half = p.n // 2
        gks = small_ctx.rotation_keys(sk, [amount])
        v = rng.integers(0, p.t, p.n)
        ct = small_ctx.encrypt(Plaintext.from_slots(v, p), pk)
        out = small_ctx.rotate_slots(ct, amount, gks)
        expected = np.concatenate(
            [np.roll(v[:half], -amount), np.roll(v[half:], -amount)]
        )
        assert np.array_equal(small_ctx.decrypt(out, sk).to_slots(), expected % p.t)

    def test_row_swap(self, small_ctx, small_keys, rng):
        sk, pk = small_keys
        p = small_ctx.params
        half = p.n // 2
        gks = small_ctx.galois_keys(sk, [slotlib.row_swap_element(p.n)])
        v = rng.integers(0, p.t, p.n)
        ct = small_ctx.encrypt(Plaintext.from_slots(v, p), pk)
        out = small_ctx.row_swap(ct, gks)
        expected = np.concatenate([v[half:], v[:half]])
        assert np.array_equal(small_ctx.decrypt(out, sk).to_slots(), expected % p.t)

    def test_rotation_composes(self, small_ctx, small_keys, rng):
        sk, pk = small_keys
        p = small_ctx.params
        gks = small_ctx.rotation_keys(sk, [1, 2, 3])
        v = rng.integers(0, p.t, p.n)
        ct = small_ctx.encrypt(Plaintext.from_slots(v, p), pk)
        once = small_ctx.rotate_slots(small_ctx.rotate_slots(ct, 1, gks), 2, gks)
        direct = small_ctx.rotate_slots(ct, 3, gks)
        assert np.array_equal(
            small_ctx.decrypt(once, sk).to_slots(),
            small_ctx.decrypt(direct, sk).to_slots(),
        )

    def test_missing_key_raises(self, small_ctx, small_keys, rng):
        _, pk = small_keys
        p = small_ctx.params
        ct = small_ctx.encrypt(Plaintext.from_slots(rng.integers(0, p.t, p.n), p), pk)
        with pytest.raises(ParameterError):
            small_ctx.rotate_slots(ct, 1, {})
