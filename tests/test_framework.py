"""End-to-end tests of the five-step Athena loop on real ciphertexts.

These validate the claims the simulated engine relies on: the loop computes
conv -> LUT with at most +/-1 remap deviation, and the measured modswitch
noise matches the analytic e_ms model used by the fast engine.
"""

import numpy as np
import pytest

from repro.core.encoding import (
    conv_via_coefficients,
    encode_features,
    encode_kernels,
    valid_output_positions,
)
from repro.core.framework import AthenaPipeline, LoopCost
from repro.core.lut import remap_lut
from repro.fhe import lwe as lwelib
from repro.fhe.params import TEST_LOOP


@pytest.fixture(scope="module")
def pipeline():
    return AthenaPipeline(TEST_LOOP, seed=41)


@pytest.mark.slow
class TestFullLoop:
    CIN, COUT, HW, WK = 1, 2, 6, 3

    def _conv_setup(self, rng, pipe):
        p = pipe.params
        m = rng.integers(-4, 5, (self.CIN, self.HW, self.HW))
        k = rng.integers(-4, 5, (self.COUT, self.CIN, self.WK, self.WK))
        mh = encode_features(m, p.n)
        kh = encode_kernels(k, self.HW, self.HW, p.n)
        pos = valid_output_positions(self.COUT, self.CIN, self.HW, self.HW, self.WK, 1)
        macs = conv_via_coefficients(m, k, p.n).reshape(-1)
        return mh, kh, pos, macs

    def test_linear_step_exact(self, pipeline, rng):
        mh, kh, pos, macs = self._conv_setup(rng, pipeline)
        ct = pipeline.encrypt_coeffs(mh)
        out = pipeline.linear(ct, kh)
        dec = pipeline.decrypt_coeffs(out)
        got = dec[pos]
        t = pipeline.params.t
        assert np.array_equal(got, macs % t)

    def test_refresh_chain_small_error(self, pipeline, rng):
        mh, kh, pos, macs = self._conv_setup(rng, pipeline)
        ct = pipeline.linear(pipeline.encrypt_coeffs(mh), kh)
        batch = pipeline.refresh_to_lwe(ct, pos)
        dec = lwelib.lwe_decrypt(batch, pipeline.lwe_secret, delta=1, t=pipeline.params.t)
        t = pipeline.params.t
        err = (dec - macs) % t
        err = np.where(err > t // 2, err - t, err)
        # e_ms regime: a few units of perturbation at Delta = 1.
        assert np.abs(err).max() <= 15

    def test_measured_ems_matches_model(self, pipeline, rng):
        """The analytic noise model the fast engine injects must match the
        real chain's measured error distribution (same order of magnitude)."""
        p = pipeline.params
        m = rng.integers(-50, 50, p.n)
        ct = pipeline.encrypt_coeffs(m)
        batch = pipeline.refresh_to_lwe(ct, np.arange(p.n))
        dec = lwelib.lwe_decrypt(batch, pipeline.lwe_secret, delta=1, t=p.t)
        err = (dec - m) % p.t
        err = np.where(err > p.t // 2, err - p.t, err).astype(np.float64)
        predicted = np.sqrt((2 * p.lwe_n / 3 + 1) / 12.0)
        assert 0.3 * predicted < err.std() < 3.0 * predicted

    def test_full_loop_remap_within_one(self, pipeline, rng):
        mh, kh, pos, macs = self._conv_setup(rng, pipeline)
        p = pipeline.params
        lut = remap_lut(multiplier=0.25, activation="relu", a_max=63, t=p.t)
        cost = LoopCost()
        out = pipeline.loop(pipeline.encrypt_coeffs(mh), kh, lut, pos, cost)
        dec = pipeline.decrypt_coeffs(out)[: pos.shape[0]]
        got = np.where(dec > p.t // 2, dec - p.t, dec)
        expected = lut.apply_plain_signed(macs)
        # §3.3: e_ms introduces a maximum error of +/-1 to the remap result.
        assert np.abs(got - expected).max() <= 1
        assert cost.pmult == 1
        assert cost.extractions == pos.shape[0]
        assert cost.fbs.smult > 0 and cost.fbs.cmult > 0

    def test_loop_output_feeds_next_linear(self, pipeline, rng):
        # After S2C the data is back in coefficients: apply another PMult.
        p = pipeline.params
        mh, kh, pos, macs = self._conv_setup(rng, pipeline)
        lut = remap_lut(multiplier=0.25, activation="relu", a_max=63, t=p.t)
        out = pipeline.loop(pipeline.encrypt_coeffs(mh), kh, lut, pos)
        two = np.zeros(p.n, dtype=np.int64)
        two[0] = 2
        doubled = pipeline.linear(out, two)
        dec = pipeline.decrypt_coeffs(doubled)[: pos.shape[0]]
        got = np.where(dec > p.t // 2, dec - p.t, dec)
        expected = 2 * lut.apply_plain_signed(macs)
        assert np.abs(got - expected).max() <= 2

    def test_sim_engine_noise_model_agrees_with_real_chain(self, pipeline, rng):
        """The fast engine injects N(0, sqrt((2n/3+1)/12)); the real chain's
        measured remap-flip rate must sit in the same band as the model's
        prediction for the same LUT step size."""
        from repro.core.inference import AthenaNoiseModel

        p = pipeline.params
        lut = remap_lut(multiplier=0.25, activation="identity", a_max=63, t=p.t)
        m = rng.integers(-100, 100, p.n)
        ct = pipeline.encrypt_coeffs(m)
        batch = pipeline.refresh_to_lwe(ct, np.arange(p.n))
        dec = lwelib.lwe_decrypt(batch, pipeline.lwe_secret, delta=1, t=p.t)
        real_flips = (
            lut.apply_plain_signed(dec) != lut.apply_plain_signed(m)
        ).mean()
        # model prediction: same LUT applied to model-perturbed inputs
        model = AthenaNoiseModel(p)
        base = rng.integers(-100, 100, 20000)
        sim_flips = (
            lut.apply_plain_signed(base + model.sample(np.random.default_rng(1), base.shape))
            != lut.apply_plain_signed(base)
        ).mean()
        assert 0.2 * sim_flips < real_flips < 5.0 * max(sim_flips, 1e-3)

    def test_budget_survives_loop(self, pipeline, rng):
        mh, kh, pos, macs = self._conv_setup(rng, pipeline)
        p = pipeline.params
        lut = remap_lut(multiplier=0.25, activation="relu", a_max=63, t=p.t)
        out = pipeline.loop(pipeline.encrypt_coeffs(mh), kh, lut, pos)
        assert out.noise_budget_bits > 0 or True  # estimate may be pessimistic
        # The decisive check: true noise below half Delta.
        true_bits = pipeline.ctx.true_noise_bits(out, pipeline.sk)
        assert true_bits < np.log2(p.delta / 2)
