"""Shared fixtures: contexts and keys are expensive, so build them once."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fhe.bfv import BfvContext
from repro.fhe.params import TEST_FBS, TEST_SMALL, TEST_TINY


@pytest.fixture(scope="session")
def small_ctx():
    return BfvContext(TEST_SMALL, seed=101)


@pytest.fixture(scope="session")
def small_keys(small_ctx):
    return small_ctx.keygen()


@pytest.fixture(scope="session")
def tiny_ctx():
    return BfvContext(TEST_TINY, seed=202)


@pytest.fixture(scope="session")
def tiny_keys(tiny_ctx):
    return tiny_ctx.keygen()


@pytest.fixture(scope="session")
def fbs_ctx():
    return BfvContext(TEST_FBS, seed=303)


@pytest.fixture(scope="session")
def fbs_keys(fbs_ctx):
    return fbs_ctx.keygen()


@pytest.fixture(scope="session")
def fbs_rlk(fbs_ctx, fbs_keys):
    sk, _ = fbs_keys
    return fbs_ctx.relin_key(sk)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
