"""Fused-kernel tier: counting parity, bit-identity, and lazy-reduction safety.

Three claims pinned here:

1. *Counting parity* — a fused op is counted exactly once, in the
   primitive units the decomposed path would have dispatched. Pinned two
   ways: CountingBackend totals are identical whether its inner engine
   fuses (``batched``) or decomposes (``batched-unfused``) — the
   double-count regression — and the bulk-counted units match what a
   counting backend *without* the fused overrides records organically
   when the default decompositions drive its primitive counters.
2. *Bit-identity* — the batched fused kernels (stacked NTT keyswitch,
   fused rotate, giant-step batching) produce byte-for-byte the same
   results as the decomposed defaults and the serial reference.
3. *Lazy-reduction safety* — :func:`lazy_reduce_sum` equals the exact
   (arbitrary-precision) fold for any chain of reduced residues, and
   :func:`lazy_chain_limit` leaves orders-of-magnitude headroom over the
   longest chains the engine forms (gadget digit axes, HAdd fan-ins) for
   every parameter preset.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fhe.backend import (
    BATCHED,
    BATCHED_UNFUSED,
    SERIAL,
    Backend,
    CountingBackend,
    lazy_chain_limit,
    lazy_reduce_sum,
)
from repro.fhe.bfv import BfvContext, Plaintext
from repro.fhe.params import PRESETS, TEST_FBS
from repro.fhe.slots import rotation_galois_element

_slow = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class DecomposedCounting(CountingBackend):
    """Counting backend with the fused-tier overrides removed.

    The fused ops fall back to the ``Backend`` default decompositions,
    whose ``self.add`` / ``self.mul`` / ``self.automorphism`` calls land
    on CountingBackend's primitive counters — so this backend counts the
    decomposed op stream *organically*, one primitive at a time. Its
    totals are the ground truth the bulk ``_keyswitch_units`` formulas
    must reproduce.
    """

    hadd_many = Backend.hadd_many
    keyswitch = Backend.keyswitch
    rotate_keyswitch = Backend.rotate_keyswitch
    giant_step_batch = Backend.giant_step_batch


def _fixture():
    ctx = BfvContext(TEST_FBS, seed=1234)
    sk, pk = ctx.keygen()
    rlk = ctx.relin_key(sk)
    gk = ctx.galois_key(sk, rotation_galois_element(TEST_FBS.n, 1))
    rng = np.random.default_rng(99)
    cts = [
        ctx.encrypt(
            Plaintext.from_coeffs(rng.integers(0, TEST_FBS.t, TEST_FBS.n), TEST_FBS),
            pk,
        )
        for _ in range(3)
    ]
    return ctx, sk, rlk, gk, cts


def _run_workload(be, ctx, rlk, gk, cts):
    """One of each fused op; returns the concatenated result arrays."""
    moduli = ctx.params.moduli
    a, b, c = cts
    k = rotation_galois_element(ctx.params.n, 1)
    d0, d1 = be.keyswitch(a.c1.data, rlk, moduli)
    r0, r1 = be.rotate_keyswitch(a.c0.data, a.c1.data, k, gk, moduli)
    prods = be.giant_step_batch(ctx, [(a, b), (b, c), (a, c)], rlk)
    s = be.hadd_many([a.c0.data, b.c0.data, c.c0.data, a.c1.data], moduli)
    outs = [d0, d1, r0, r1, s]
    for p in prods:
        outs.extend([p.c0.data, p.c1.data])
    return outs


class TestCountingParity:
    def test_counts_independent_of_inner_fusion(self):
        """Regression for the double-count bug: totals must not depend on
        whether the delegated-to engine fuses or decomposes."""
        ctx, _, rlk, gk, cts = _fixture()
        fused = CountingBackend(BATCHED)
        unfused = CountingBackend(BATCHED_UNFUSED)
        out_f = _run_workload(fused, ctx, rlk, gk, cts)
        out_u = _run_workload(unfused, ctx, rlk, gk, cts)
        assert fused.totals() == unfused.totals()
        assert fused.ops_by_phase() == unfused.ops_by_phase()
        for x, y in zip(out_f, out_u):
            assert np.array_equal(x, y)

    def test_bulk_units_match_organic_decomposed_counts(self):
        """The ``_keyswitch_units`` formulas equal the primitive stream the
        default decompositions actually dispatch."""
        ctx, _, rlk, gk, cts = _fixture()
        bulk = CountingBackend(BATCHED)
        organic = DecomposedCounting(BATCHED)
        out_b = _run_workload(bulk, ctx, rlk, gk, cts)
        out_o = _run_workload(organic, ctx, rlk, gk, cts)
        assert bulk.totals() == organic.totals()
        for x, y in zip(out_b, out_o):
            assert np.array_equal(x, y)

    def test_keyswitch_unit_formula(self):
        """One keyswitch = per digit: two full products + two adds."""
        ctx, _, rlk, _, cts = _fixture()
        params = ctx.params
        l, n, d = len(params.moduli), params.n, rlk.num_digits
        counting = CountingBackend(BATCHED)
        counting.keyswitch(cts[0].c1.data, rlk, params.moduli)
        assert counting.totals() == {
            "ntt": 6 * l * d,
            "mod_mul": 2 * d * l * n,
            "mod_add": 2 * d * l * n,
        }


class TestFusedBitIdentity:
    """Batched fused kernels == decomposed defaults == serial reference."""

    def test_all_fused_ops_identical_across_backends(self):
        ctx, _, rlk, gk, cts = _fixture()
        rlk.warm()
        gk.warm()
        baseline = _run_workload(BATCHED, ctx, rlk, gk, cts)
        for be in (BATCHED_UNFUSED, SERIAL, CountingBackend(BATCHED)):
            outs = _run_workload(be, ctx, rlk, gk, cts)
            for x, y in zip(baseline, outs):
                assert np.array_equal(x, y), be.name

    def test_fused_ops_decrypt_correctly(self):
        """The fused giant-step products are real relinearized CMults."""
        ctx, sk, rlk, _, cts = _fixture()
        a, b, _ = cts
        t = ctx.params.t
        ma = ctx.decrypt(a, sk).coeffs
        mb = ctx.decrypt(b, sk).coeffs
        from repro.fhe.ntt import negacyclic_mul_exact

        expect = np.mod(negacyclic_mul_exact(ma.tolist(), mb.tolist()), t)
        (prod,) = BATCHED.giant_step_batch(ctx, [(a, b)], rlk)
        assert np.array_equal(ctx.decrypt(prod, sk).coeffs, expect)


# --- lazy-reduction safety ----------------------------------------------------

_presets = st.sampled_from(sorted(PRESETS))
_chain_lengths = st.integers(min_value=1, max_value=96)


class TestLazyReduction:
    @given(_presets, _chain_lengths, st.integers(min_value=0, max_value=2**32))
    @_slow
    def test_lazy_sum_equals_exact_fold(self, preset, k, seed):
        """lazy_reduce_sum == the arbitrary-precision sum mod p, for reduced
        residue chains at every preset's modulus sizes."""
        params = PRESETS[preset]
        moduli = params.moduli
        rng = np.random.default_rng(seed)
        # Worst-case reduced inputs: residues up to max(p) - 1 on every limb.
        stack = rng.integers(0, max(moduli), (k, len(moduli), 8), dtype=np.int64)
        got = lazy_reduce_sum(stack, moduli)
        mods = np.array(moduli, dtype=np.int64)[:, None]
        exact = stack.astype(object).sum(axis=0) % mods
        assert got.dtype == np.int64
        assert np.array_equal(got, exact.astype(np.int64))

    @given(_presets)
    @settings(max_examples=len(PRESETS), deadline=None)
    def test_chain_limit_is_int64_safe_and_tight(self, preset):
        """k residues of max(p)-1 fit in int64 iff k <= lazy_chain_limit."""
        moduli = PRESETS[preset].moduli
        limit = lazy_chain_limit(moduli)
        peak = max(moduli) - 1
        assert limit * peak <= 2**63 - 1
        assert (limit + 1) * peak > 2**63 - 1

    def test_headroom_over_longest_engine_chains(self):
        """The longest lazy chains the engine forms — the gadget digit axis
        of a keyswitch and the slot-count HAdd fan-ins — sit orders of
        magnitude below the overflow bound at every preset."""
        for params in PRESETS.values():
            limit = lazy_chain_limit(params.moduli)
            num_digits = -(-params.q.bit_length() // params.decomp_bits)
            longest = max(num_digits, params.n)
            assert limit >= 1000 * longest, params.name

    def test_chunked_fold_beyond_limit(self):
        """Chains longer than the limit fold in overflow-safe chunks and
        still match the exact sum (forced with a 62-bit modulus)."""
        moduli = ((1 << 62) - 57,)
        limit = lazy_chain_limit(moduli)
        assert limit == 2  # the chunk path actually engages below
        rng = np.random.default_rng(8)
        stack = rng.integers(0, moduli[0], (11, 1, 16), dtype=np.int64)
        got = lazy_reduce_sum(stack, moduli)
        exact = stack.astype(object).sum(axis=0) % moduli[0]
        assert np.array_equal(got, exact.astype(np.int64))

    def test_single_and_empty_axis_shapes(self):
        moduli = PRESETS["test-tiny"].moduli
        stack = np.arange(2 * 8, dtype=np.int64).reshape(1, 2, 8)
        assert np.array_equal(lazy_reduce_sum(stack, moduli), stack[0])
