"""Tests for parameter sets and the randomness source."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.fhe.params import (
    ATHENA,
    ATHENA_MEDIUM,
    PRESETS,
    TEST_LOOP,
    TEST_SMALL,
    FheParams,
    get_params,
)
from repro.utils.sampling import Sampler


class TestAthenaParams:
    def test_paper_values(self):
        assert ATHENA.n == 1 << 15
        assert ATHENA.t == 65537
        assert ATHENA.lwe_n == 2048
        assert 719 <= ATHENA.q.bit_length() <= 721

    def test_ciphertext_size_matches_paper(self):
        # Paper Table 1: 5.6 MB.
        assert ATHENA.ciphertext_bytes == pytest.approx(5.6 * 2**20, rel=0.05)

    def test_full_slot_packing_supported(self):
        # t - 1 = 2^16 is divisible by 2N = 2^16: all slots available.
        assert ATHENA.slots_supported

    def test_moduli_are_distinct_ntt_primes(self):
        assert len(set(ATHENA.moduli)) == ATHENA.num_limbs
        for p in ATHENA.moduli:
            assert p % (2 * ATHENA.n) == 1
            assert p < 1 << 30

    def test_delta_definition(self):
        assert ATHENA.delta == ATHENA.q // ATHENA.t


class TestPresets:
    def test_all_presets_valid(self):
        for params in PRESETS.values():
            assert params.slots_supported
            assert params.q == np.prod([], initial=1) or params.q > 0
            assert params.lwe_q == params.moduli[0]

    def test_lookup(self):
        assert get_params("athena") is ATHENA
        assert get_params("test-loop") is TEST_LOOP
        with pytest.raises(ParameterError):
            get_params("toy")


class TestValidation:
    def test_non_pow2_degree(self):
        with pytest.raises(ParameterError):
            FheParams("bad", n=100, limb_bits=30, num_limbs=2, t=257, lwe_n=16)

    def test_composite_t(self):
        with pytest.raises(ParameterError):
            FheParams("bad", n=32, limb_bits=30, num_limbs=2, t=256, lwe_n=16)

    def test_wide_limbs(self):
        with pytest.raises(ParameterError):
            FheParams("bad", n=32, limb_bits=32, num_limbs=2, t=257, lwe_n=16)

    def test_lwe_dim_exceeds_ring(self):
        with pytest.raises(ParameterError):
            FheParams("bad", n=32, limb_bits=30, num_limbs=2, t=257, lwe_n=64)

    def test_non_pow2_lwe(self):
        with pytest.raises(ParameterError):
            FheParams("bad", n=64, limb_bits=30, num_limbs=2, t=257, lwe_n=24)


class TestSizing:
    def test_keyswitch_key_scales_with_digits(self):
        one = TEST_SMALL.keyswitch_key_bytes(digits=1)
        five = TEST_SMALL.keyswitch_key_bytes(digits=5)
        assert five == 5 * one

    def test_total_keys_grow_with_rotations(self):
        assert TEST_SMALL.total_key_bytes(8) > TEST_SMALL.total_key_bytes(2)

    def test_medium_between_small_and_full(self):
        assert TEST_SMALL.ciphertext_bytes < ATHENA_MEDIUM.ciphertext_bytes < ATHENA.ciphertext_bytes


class TestSampler:
    def test_deterministic_with_seed(self):
        a = Sampler(5).uniform(1000, 100)
        b = Sampler(5).uniform(1000, 100)
        assert np.array_equal(a, b)

    def test_uniform_range(self):
        vals = Sampler(1).uniform(257, 10000)
        assert vals.min() >= 0 and vals.max() < 257

    def test_ternary_values(self):
        vals = Sampler(2).ternary(10000)
        assert set(np.unique(vals)) <= {-1, 0, 1}
        # roughly balanced
        assert 0.25 < (vals == 0).mean() < 0.42

    def test_gaussian_std(self):
        vals = Sampler(3, sigma=3.2).gaussian(50000)
        assert 2.9 < vals.std() < 3.5

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20)
    def test_binary_is_bits(self, seed):
        vals = Sampler(seed).binary(100)
        assert set(np.unique(vals)) <= {0, 1}
