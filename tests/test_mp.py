"""Tests for the mixed-precision PTQ allocator (``repro.quant.mp``)."""

import numpy as np
import pytest

from repro.core.plan import compile_program, program_fingerprint
from repro.core.program import lower
from repro.core.trace import effective_t
from repro.errors import ModulusOverflow, ParameterError, QuantizationError
from repro.fhe.params import TEST_FBS
from repro.fhe.serialize import dump_plan, load_plan
from repro.quant.mp import (
    DEFAULT_LUT_MARGIN,
    MpConfig,
    allocate_bits,
    assign_lut_ranges,
    mac_layer_names,
    mp_micro_subject,
)
from repro.quant.quantize import (
    LayerQuantConfig,
    QConv,
    QLinear,
    QuantConfig,
    quantize_model,
)


@pytest.fixture(scope="module")
def subject():
    return mp_micro_subject()


@pytest.fixture(scope="module")
def allocation(subject):
    model, x, y, config = subject
    return allocate_bits(model, x, y, config, params=TEST_FBS, budget=0.02)


class TestMpConfig:
    def test_round_trip_json(self):
        mp = MpConfig.from_dict({
            "conv0": LayerQuantConfig(4, 5),
            "linear2": LayerQuantConfig(2, 2),
        })
        again = MpConfig.from_json(mp.to_json())
        assert again == mp
        assert again.get("conv0") == LayerQuantConfig(4, 5)
        assert again.get("linear1") is None

    def test_tag_stable_and_uniform(self):
        assert not MpConfig()
        assert MpConfig().tag() == "uniform"
        mp = MpConfig.from_dict({"linear1": LayerQuantConfig(3, 3)})
        assert mp.tag() == "linear1=w3a3"
        assert len(mp) == 1

    def test_duplicate_layer_rejected(self):
        with pytest.raises(ParameterError):
            MpConfig(assignments=(
                ("conv0", LayerQuantConfig(3, 3)),
                ("conv0", LayerQuantConfig(4, 4)),
            ))

    def test_narrow_bits_rejected(self):
        with pytest.raises(QuantizationError):
            LayerQuantConfig(1, 3)


class TestLayerNaming:
    def test_names_match_quantize_counter(self, subject):
        model, x, _y, config = subject
        qm = quantize_model(model, x, config, name="named")
        names = mac_layer_names(qm.layers)
        assert [n for n, _ in names] == ["conv0", "linear1"]
        assert isinstance(names[0][1], QConv)
        assert isinstance(names[1][1], QLinear)


class TestTrackedQuantization:
    def test_per_layer_bits_clamp_weights(self, subject):
        model, x, _y, config = subject
        mp = MpConfig.from_dict({"linear1": LayerQuantConfig(2, 2)})
        qm = quantize_model(model, x, config, name="m", mp=mp)
        names = dict(mac_layer_names(qm.layers))
        assert int(np.abs(names["linear1"].weight).max()) <= 1  # w_max(2) = 1
        assert int(np.abs(names["conv0"].weight).max()) <= config.w_max
        assert names["linear1"].bits == LayerQuantConfig(2, 2)

    def test_uniform_tracking_matches_legacy(self, subject):
        """The floor config is plain-identical to the legacy baseline."""
        model, x, _y, config = subject
        legacy = quantize_model(model, x, config, name="m")
        floor = quantize_model(model, x, config, name="m", mp=MpConfig(),
                               bias_correct=False, lut_margin=None)
        x_q = legacy.quantize_input(x[:16])
        assert np.array_equal(legacy.forward_int(x_q), floor.forward_int(x_q))

    def test_lut_ranges_cover_observed_macs(self, subject):
        model, x, _y, config = subject
        qm = quantize_model(model, x, config, name="m", mp=MpConfig(),
                            lut_margin=DEFAULT_LUT_MARGIN)
        for _name, node in mac_layer_names(qm.layers):
            assert node.lut_range is not None
            assert node.lut_range >= node.mac_peak + DEFAULT_LUT_MARGIN
            assert 2 * node.lut_range + 1 < config.t

    def test_assign_lut_ranges_post_hoc(self, subject):
        model, x, y, config = subject
        qm = quantize_model(model, x, config, name="m")
        qm.accuracy(x[:32], y[:32])  # populate mac peaks
        annotated = assign_lut_ranges(qm)
        assert annotated == 2
        assert all(n.lut_range for _, n in mac_layer_names(qm.layers))


class TestRestrictedLut:
    def test_tables_exact_on_domain(self, subject):
        model, x, _y, config = subject
        qm = quantize_model(model, x, config, name="m", mp=MpConfig(),
                            lut_margin=DEFAULT_LUT_MARGIN)
        program = lower(qm, TEST_FBS)
        checked = 0
        for step in program.lut_steps():
            spec = step.lut
            r = spec.lut_range
            assert r and 2 * r + 1 < config.t
            lut = spec.build(config)
            pts = np.arange(-r, r + 1, dtype=np.int64)
            exact = spec.apply_exact(pts, config)
            assert np.array_equal(lut.values[pts % config.t] % config.t,
                                  exact % config.t)
            # The registered interpolant is the low-degree polynomial the
            # FBS ladder actually evaluates.
            degree = int(np.max(np.nonzero(lut.coeffs % config.t)))
            assert degree <= 2 * r
            checked += 1
        assert checked == 2

    def test_effective_t_takes_certified_range(self, subject):
        model, x, _y, config = subject
        qm = quantize_model(model, x, config, name="m", mp=MpConfig(),
                            lut_margin=DEFAULT_LUT_MARGIN)
        for _name, node in mac_layer_names(qm.layers):
            assert effective_t(node, TEST_FBS) == 2 * node.lut_range + 1
            # Without the certified range the model floors at 256.
            node.lut_range = None
            assert effective_t(node, TEST_FBS) >= 256


class TestAllocator:
    def test_within_budget_and_cheaper(self, allocation):
        res = allocation
        assert res.drop <= res.budget + 1e-12
        assert res.cost < res.baseline_cost
        assert res.floor_cost < res.baseline_cost
        # Floor admissibility: uniform bits + restricted LUTs never lose
        # accuracy vs the legacy baseline.
        assert res.floor_accuracy >= res.baseline_accuracy - res.budget - 1e-12

    def test_dp_no_worse_than_greedy(self, subject, allocation):
        model, x, y, config = subject
        dp = allocate_bits(model, x, y, config, params=TEST_FBS,
                           budget=0.02, mode="dp")
        assert dp.drop <= dp.budget + 1e-12
        assert dp.cost <= allocation.cost + 1e-9

    def test_report_and_json(self, allocation):
        payload = allocation.to_json()
        assert payload["tag"] == allocation.mp.tag()
        assert MpConfig.from_json(payload["mp"]) == allocation.mp
        assert payload["layers"], payload
        text = allocation.report()
        assert "baseline" in text and "allocated" in text

    def test_bad_mode_rejected(self, subject):
        model, x, y, config = subject
        with pytest.raises(ParameterError):
            allocate_bits(model, x, y, config, params=TEST_FBS,
                          mode="simulated-annealing")


class TestPlanIntegration:
    def test_fingerprint_distinguishes_mp(self, subject, allocation):
        model, x, _y, config = subject
        base = quantize_model(model, x, config, name="m")
        fp_base = program_fingerprint(lower(base, TEST_FBS))
        fp_mp = program_fingerprint(lower(allocation.model, TEST_FBS))
        assert fp_base != fp_mp
        # Deterministic: re-lowering the same config reproduces the digest.
        again = quantize_model(model, x, config, name="m")
        assert program_fingerprint(lower(again, TEST_FBS)) == fp_base

    def test_mp_plan_round_trips(self, allocation):
        program = lower(allocation.model, TEST_FBS)
        plan = compile_program(program, TEST_FBS,
                               tuning=allocation.tuning.tuning)
        raw = dump_plan(plan)
        assert dump_plan(load_plan(raw, TEST_FBS)) == raw


class TestModulusOverflowError:
    def test_validate_t_names_offender(self, subject):
        model, x, y, _config = subject
        wide = QuantConfig(w_bits=5, a_bits=5, t=TEST_FBS.t)
        qm = quantize_model(model, x, wide, name="m")
        qm.accuracy(x[:32], y[:32])  # populate mac peaks
        assert qm.max_mac() > wide.t // 2
        assert qm.check_t() is False
        with pytest.raises(ModulusOverflow) as err:
            qm.validate_t()
        exc = err.value
        assert exc.layer and exc.layer.startswith(("qconv", "qlinear"))
        assert exc.t == wide.t
        assert exc.excess == exc.mac_peak - wide.t // 2 > 0
        assert exc.layer in str(exc)
