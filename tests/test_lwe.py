"""Tests for the LWE chain: modswitch, sample extraction, keyswitch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.fhe import lwe
from repro.fhe.bfv import Plaintext
from repro.utils.sampling import Sampler


@pytest.fixture(scope="module")
def chain(small_ctx):
    """Context, keys, and a small LWE secret + keyswitch key."""
    ctx = small_ctx
    sk, pk = ctx.keygen()
    samp = Sampler(99)
    s_small = samp.ternary(ctx.params.lwe_n)
    ksk = lwe.keyswitch_keygen(
        sk.coeffs, s_small, ctx.params.lwe_q, base_bits=7, sampler=samp
    )
    return ctx, sk, pk, s_small, ksk


class TestRlweModSwitch:
    def test_message_survives(self, chain, rng):
        ctx, sk, pk, _, _ = chain
        p = ctx.params
        m = rng.integers(-100, 100, p.n)
        ct = ctx.encrypt(Plaintext.from_coeffs(m, p), pk)
        small = lwe.rlwe_mod_switch(ct, p.lwe_q)
        assert small.modulus == p.lwe_q
        batch = lwe.sample_extract(small)
        dec = lwe.lwe_decrypt(batch, sk.coeffs, delta=p.lwe_q // p.t, t=p.t)
        assert np.array_equal(dec, m % p.t)

    def test_output_dtype_and_range(self, chain, rng):
        ctx, _, pk, _, _ = chain
        p = ctx.params
        ct = ctx.encrypt(Plaintext.from_coeffs(rng.integers(0, p.t, p.n), p), pk)
        small = lwe.rlwe_mod_switch(ct, p.lwe_q)
        assert small.c0.max() < p.lwe_q and small.c0.min() >= 0
        assert small.c1.max() < p.lwe_q and small.c1.min() >= 0


class TestSampleExtract:
    def test_matches_algorithm1_reference(self, rng):
        # Scalar reference implementation of Alg. 1 vs the vectorized one.
        n, q = 16, 97
        c0 = rng.integers(0, q, n)
        c1 = rng.integers(0, q, n)
        ct = lwe.SmallRlwe(c0.astype(np.int64), c1.astype(np.int64), q)
        batch = lwe.sample_extract(ct)
        for i in range(n):
            for j in range(n):
                expected = c1[i - j] if j <= i else -c1[n + i - j]
                assert batch.a[i, j] == expected % q
            assert batch.b[i] == c0[i]

    def test_phase_equals_ring_phase(self, chain, rng):
        # b_i + <a_i, s> must equal coefficient i of c0 + c1*s.
        ctx, sk, pk, _, _ = chain
        p = ctx.params
        m = rng.integers(0, p.t, p.n)
        ct = ctx.encrypt(Plaintext.from_coeffs(m, p), pk)
        small = lwe.rlwe_mod_switch(ct, p.lwe_q)
        batch = lwe.sample_extract(small)
        # ring phase mod q'
        from repro.fhe.ntt import negacyclic_mul_exact

        prod = np.mod(
            negacyclic_mul_exact(list(small.c1), list(sk.coeffs)), p.lwe_q
        )
        ring_phase = (small.c0 + prod) % p.lwe_q
        assert np.array_equal(batch.phase(sk.coeffs), ring_phase)

    def test_subset_extraction(self, chain, rng):
        ctx, sk, pk, _, _ = chain
        p = ctx.params
        m = rng.integers(0, p.t, p.n)
        ct = ctx.encrypt(Plaintext.from_coeffs(m, p), pk)
        small = lwe.rlwe_mod_switch(ct, p.lwe_q)
        idx = np.array([0, 5, p.n - 1])
        batch = lwe.sample_extract(small, idx)
        assert batch.count == 3
        dec = lwe.lwe_decrypt(batch, sk.coeffs, delta=p.lwe_q // p.t, t=p.t)
        assert np.array_equal(dec, m[idx] % p.t)

    def test_bad_index_raises(self, chain):
        ctx, *_ = chain
        ct = lwe.SmallRlwe(
            np.zeros(ctx.params.n, dtype=np.int64),
            np.zeros(ctx.params.n, dtype=np.int64),
            17,
        )
        with pytest.raises(ParameterError):
            lwe.sample_extract(ct, np.array([ctx.params.n]))


class TestKeyswitch:
    def test_dimension_switch_preserves_message(self, chain, rng):
        ctx, sk, pk, s_small, ksk = chain
        p = ctx.params
        m = rng.integers(-50, 50, p.n)
        ct = ctx.encrypt(Plaintext.from_coeffs(m, p), pk)
        batch = lwe.sample_extract(lwe.rlwe_mod_switch(ct, p.lwe_q))
        switched = lwe.keyswitch(batch, ksk)
        assert switched.dim == p.lwe_n
        dec = lwe.lwe_decrypt(switched, s_small, delta=p.lwe_q // p.t, t=p.t)
        assert np.array_equal(dec, m % p.t)

    def test_modulus_mismatch_raises(self, chain):
        *_, ksk = chain
        bad = lwe.LweBatch(np.zeros((1, 4), dtype=np.int64), np.zeros(1, dtype=np.int64), 31)
        with pytest.raises(ParameterError):
            lwe.keyswitch(bad, ksk)


class TestLweModSwitch:
    def test_full_chain_error_is_small(self, chain, rng):
        # End-to-end: Q -> q' -> extract -> keyswitch -> t. The message lands
        # at Delta=1 perturbed by only a few units (the e_ms regime).
        ctx, sk, pk, s_small, ksk = chain
        p = ctx.params
        m = rng.integers(-100, 100, p.n)
        ct = ctx.encrypt(Plaintext.from_coeffs(m, p), pk)
        batch = lwe.sample_extract(lwe.rlwe_mod_switch(ct, p.lwe_q))
        switched = lwe.keyswitch(batch, ksk)
        final = lwe.lwe_mod_switch(switched, p.t)
        dec = lwe.lwe_decrypt(final, s_small, delta=1, t=p.t)
        err = (dec - m) % p.t
        err = np.where(err > p.t // 2, err - p.t, err)
        assert np.abs(err).max() <= 16
        assert np.abs(err).mean() <= 4

    def test_ems_std_formula_positive(self, chain):
        ctx, sk, *_ = chain
        std = lwe.expected_ems_std(ctx.params, sk.norm_sq)
        assert std > 0
        # dominated by the rounding term sqrt((||s||^2+1)/12)
        assert std == pytest.approx(np.sqrt((sk.norm_sq + 1) / 12), rel=1e-3)

    @given(st.integers(min_value=2, max_value=60))
    @settings(max_examples=20)
    def test_modswitch_scales_phase(self, shift):
        # Deterministic property: switching a noiseless phase scales it.
        q = 1 << 30
        new_q = 257
        a = np.zeros((4, 8), dtype=np.int64)
        b = np.full(4, (1 << shift) % q, dtype=np.int64)
        batch = lwe.LweBatch(a, b, q)
        out = lwe.lwe_mod_switch(batch, new_q)
        expected = ((b * new_q + q // 2) // q) % new_q
        assert np.array_equal(out.b, expected)
