"""Accelerator comparison: regenerate the paper's headline hardware tables.

Run:  python examples/accelerator_comparison.py

Prints Table 6 (runtime), Table 7 (EDP), Fig. 8 (Athena framework on CKKS
accelerators), Fig. 9 (execution breakdown), and the Fig. 13 lane-sweep
summary from the cycle-level simulator.
"""

from repro.accel import athena_run, render_schedule
from repro.eval.figures import render_fig8, render_fig9, render_fig13
from repro.eval.tables import render_table6, render_table7, render_table8


def main() -> None:
    for renderer in (
        render_table6,
        render_table7,
        render_table8,
        render_fig8,
        render_fig9,
        render_fig13,
    ):
        print(renderer())
        print()
    print(render_schedule(athena_run("resnet20")))


if __name__ == "__main__":
    main()
