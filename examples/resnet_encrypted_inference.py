"""ResNet-20 inference under the Athena pipeline (simulated backend).

Run:  python examples/resnet_encrypted_inference.py

Trains a CIFAR-style ResNet-20 on the synthetic dataset, quantizes it to
w7a7, and runs encrypted-pipeline-faithful inference at the paper's full
parameters (N = 2^15, t = 65537) with the analytic e_ms noise injected at
every LUT round. Reports the plaintext-vs-ciphertext accuracy gap (paper
Table 5) and the per-layer error ratios (paper Fig. 4).
"""

import time

import numpy as np

from repro.core.inference import SimulatedAthenaEngine
from repro.data import synthetic_cifar
from repro.fhe.params import ATHENA
from repro.quant.models import resnet20
from repro.quant.nn import Sgd, accuracy, train_epoch
from repro.quant.quantize import QuantConfig, quantize_model


def main() -> None:
    rng = np.random.default_rng(0)
    x_train, y_train = synthetic_cifar(1200, rng)
    x_test, y_test = synthetic_cifar(400, rng)

    print("training ResNet-20 (width 0.5) on synthetic CIFAR ...")
    model = resnet20(rng=np.random.default_rng(1), width=0.5)
    opt = Sgd(lr=0.05)
    t0 = time.time()
    for epoch in range(3):
        loss = train_epoch(model, x_train, y_train, opt, batch_size=32, rng=rng)
        print(f"  epoch {epoch}: loss {loss:.3f}")
    print(f"training took {time.time() - t0:.0f}s; "
          f"float accuracy {accuracy(model, x_test, y_test) * 100:.2f}%")

    qmodel = quantize_model(model, x_train[:128], QuantConfig(7, 7), "resnet20")
    plain_acc = qmodel.accuracy(x_test, y_test)
    print(f"plain-quantized (w7a7) accuracy: {plain_acc * 100:.2f}%")
    print(f"max |MAC| = {qmodel.max_mac()}, fits t={ATHENA.t}: {qmodel.check_t()}")

    engine = SimulatedAthenaEngine(qmodel, ATHENA, seed=42)
    print(f"injected e_ms std: {engine.noise.std:.1f} "
          f"({np.log2(engine.noise.std):.1f} bits — paper: 'about 4 bits')")
    t0 = time.time()
    cipher_acc = engine.accuracy(x_test, y_test)
    print(f"ciphertext-pipeline accuracy: {cipher_acc * 100:.2f}% "
          f"({time.time() - t0:.0f}s)")
    print(f"gap: {(cipher_acc - plain_acc) * 100:+.2f}% (paper: +0.01/-0.24%)")

    _, stats = engine.infer_with_stats(x_test[:64])
    print("\nper-layer noise error ratios (Fig. 4):")
    for i, s in enumerate(stats.layers):
        if s.total:
            print(f"  {i:2d} {s.name:14s} maxMAC={s.mac_peak:6d} "
                  f"error ratio {s.error_ratio * 100:5.2f}%")


if __name__ == "__main__":
    main()
