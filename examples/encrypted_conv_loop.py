"""One full Athena five-step loop on real ciphertexts.

Run:  python examples/encrypted_conv_loop.py

A small convolution is evaluated with coefficient encoding (Step 1), the
noise-control chain refreshes the result into LWE form (Steps 2-3), packing
returns it to slots (Step 4), and functional bootstrapping applies the
merged ReLU + requantization table (Step 5) — then S2C prepares the data
for the next layer. The decrypted result is compared against the plaintext
quantized reference: every deviation is at most one remap level (paper §3.3).
"""

import time

import numpy as np

from repro.core.encoding import (
    conv_via_coefficients,
    encode_features,
    encode_kernels,
    valid_output_positions,
)
from repro.core.framework import AthenaPipeline, LoopCost
from repro.core.lut import remap_lut
from repro.fhe.params import TEST_LOOP


def main() -> None:
    params = TEST_LOOP
    print(f"parameters: {params.describe()}")
    t0 = time.time()
    pipe = AthenaPipeline(params, seed=99)
    print(f"key generation: {time.time() - t0:.1f}s")

    rng = np.random.default_rng(3)
    cin, cout, hw, wk = 1, 2, 6, 3
    image = rng.integers(-4, 5, (cin, hw, hw))
    kernel = rng.integers(-4, 5, (cout, cin, wk, wk))

    features = encode_features(image, params.n)
    kernels = encode_kernels(kernel, hw, hw, params.n)
    positions = valid_output_positions(cout, cin, hw, hw, wk, stride=1)
    lut = remap_lut(multiplier=0.25, activation="relu", a_max=63, t=params.t)

    ct = pipe.encrypt_coeffs(features)
    cost = LoopCost()
    t0 = time.time()
    out = pipe.loop(ct, kernels, lut, positions, cost)
    print(
        f"five-step loop: {time.time() - t0:.1f}s "
        f"(PMult={cost.pmult}, extractions={cost.extractions}, "
        f"FBS SMult={cost.fbs.smult}, CMult={cost.fbs.cmult})"
    )

    decrypted = pipe.decrypt_coeffs(out)[: positions.shape[0]]
    got = np.where(decrypted > params.t // 2, decrypted - params.t, decrypted)
    macs = conv_via_coefficients(image, kernel, params.n).reshape(-1)
    expected = lut.apply_plain_signed(macs)
    deviation = np.abs(got - expected)
    print(f"outputs      : {got[:10]}")
    print(f"plain quant  : {expected[:10]}")
    print(f"max |deviation| = {deviation.max()} (paper: at most 1)")
    print(f"exact matches  = {(deviation == 0).mean() * 100:.1f}%")
    assert deviation.max() <= 1


if __name__ == "__main__":
    main()
