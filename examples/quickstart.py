"""Quickstart: BFV basics and a functional bootstrap in ~40 lines.

Run:  python examples/quickstart.py

Encrypts a vector, does homomorphic arithmetic, then evaluates a ReLU
lookup table on every slot at once via functional bootstrapping — the
operation at the heart of Athena.
"""

import numpy as np

from repro.fhe import BfvContext, FbsLut, Plaintext, TEST_FBS, fbs_evaluate

def main() -> None:
    params = TEST_FBS  # reduced-size parameters; same algebra as the paper's
    print(f"parameters: {params.describe()}")

    ctx = BfvContext(params, seed=2024)
    sk, pk = ctx.keygen()
    rlk = ctx.relin_key(sk)

    rng = np.random.default_rng(7)
    # Stay within the plaintext modulus after 3*x + 5 (t = 257, centered).
    values = rng.integers(-40, 41, params.n)
    print(f"plaintext slots: {values[:8]} ...")

    # Encrypt (slot-packed), then compute 3*x + 5 homomorphically.
    ct = ctx.encrypt(Plaintext.from_slots(values, params), pk)
    ct = ctx.smult(ct, 3)
    ct = ctx.add_plain(ct, Plaintext.from_slots(np.full(params.n, 5), params))
    decoded = ctx.decrypt(ct, sk).to_slots()
    centered = np.where(decoded > params.t // 2, decoded - params.t, decoded)
    assert np.array_equal(centered, 3 * values + 5)
    print(f"3*x + 5       : {centered[:8]} ...")

    # Functional bootstrapping: ReLU as an exact lookup table.
    ct = ctx.encrypt(Plaintext.from_slots(values, params), pk)
    relu = FbsLut.from_function(lambda x: np.maximum(x, 0), params.t, "relu")
    out = fbs_evaluate(ctx, ct, relu, rlk)
    decoded = ctx.decrypt(out, sk).to_slots()
    assert np.array_equal(decoded, np.maximum(values, 0) % params.t)
    print(f"FBS ReLU      : {decoded[:8]} ...")
    print(f"noise budget after FBS: {out.noise_budget_bits:.0f} bits")
    print("quickstart OK")


if __name__ == "__main__":
    main()
