"""Arbitrary non-linear functions under FHE via functional bootstrapping.

Run:  python examples/custom_activation.py

Athena's LUT mechanism supports *any* single-input non-linearity exactly —
not just polynomial-friendly ones. This example evaluates GELU, a quantized
sigmoid, and a custom "leaky hard-swish" on encrypted data, plus encrypted
max-pooling via the max-tree, all on the real BFV backend.
"""

import numpy as np

from repro.core.lut import activation_lut, max_tree_plain, relu_lut, sigmoid_lut
from repro.fhe import BfvContext, FbsLut, Plaintext, TEST_FBS, fbs_evaluate


def main() -> None:
    params = TEST_FBS
    ctx = BfvContext(params, seed=11)
    sk, pk = ctx.keygen()
    rlk = ctx.relin_key(sk)
    rng = np.random.default_rng(5)
    x = rng.integers(-100, 101, params.n)

    def encrypted_apply(lut: FbsLut) -> np.ndarray:
        ct = ctx.encrypt(Plaintext.from_slots(x, params), pk)
        out = fbs_evaluate(ctx, ct, lut, rlk)
        dec = ctx.decrypt(out, sk).to_slots()
        return np.where(dec > params.t // 2, dec - params.t, dec)

    # 1. GELU, quantized to integer levels.
    gelu = activation_lut(
        lambda v: 0.5 * v * (1 + np.tanh(np.sqrt(2 / np.pi) * (0.05 * v + 0.044715 * (0.05 * v) ** 3))),
        params.t, in_scale=1.0, out_scale=1.0, name="gelu",
    )
    got = encrypted_apply(gelu)
    assert np.array_equal(got, gelu.apply_plain_signed(x))
    print(f"GELU        ok: x={x[:5]} -> {got[:5]}")

    # 2. Sigmoid to 100 levels.
    sig = sigmoid_lut(params.t, in_scale=0.08, out_levels=100)
    got = encrypted_apply(sig)
    assert np.array_equal(got, sig.apply_plain_signed(x))
    print(f"sigmoid     ok: x={x[:5]} -> {got[:5]}")

    # 3. A made-up activation: leaky hard-swish — any table works.
    def leaky_hard_swish(v):
        return np.where(v < -60, 0.05 * v, np.where(v > 60, v, v * (v + 60) / 120))

    swish = FbsLut.from_function(
        lambda v: np.rint(leaky_hard_swish(v.astype(float))).astype(np.int64),
        params.t, "leaky-hard-swish",
    )
    got = encrypted_apply(swish)
    assert np.array_equal(got, swish.apply_plain_signed(x))
    print(f"custom      ok: x={x[:5]} -> {got[:5]}")

    # 4. Max-pooling as a ReLU max-tree (plaintext recipe shown here; the
    #    encrypted version is one FBS per tree level — see the framework).
    windows = rng.integers(-60, 60, (8, 4))
    maxed = max_tree_plain(windows, relu_lut(params.t), params.t)
    assert np.array_equal(maxed, windows.max(axis=-1))
    print(f"max-tree    ok: {windows[0]} -> {maxed[0]}")
    print("all custom activations evaluated exactly under encryption")


if __name__ == "__main__":
    main()
