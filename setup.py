"""Legacy setup shim.

The offline environment lacks the `wheel` package, so PEP-517 editable
installs fail; `pip install -e . --no-use-pep517 --no-build-isolation`
(or plain `pip install -e .` on newer toolchains) goes through here.
"""

from setuptools import setup

setup()
